module Table = Soctest_report.Table

type span_stat = {
  name : string;
  cat : string;
  count : int;
  total_ms : float;
  mean_ms : float;
  max_ms : float;
  minor_mwords : float;
}

let span_stats events =
  let acc : (string * string, int ref * float ref * float ref * float ref)
      Hashtbl.t =
    Hashtbl.create 64
  in
  List.iter
    (function
      | Obs.Instant _ -> ()
      | Obs.Span { name; cat; dur_us; minor_words; _ } ->
        let key = (cat, name) in
        let count, total, mx, minor =
          match Hashtbl.find_opt acc key with
          | Some cell -> cell
          | None ->
            let cell = (ref 0, ref 0., ref 0., ref 0.) in
            Hashtbl.add acc key cell;
            cell
        in
        Stdlib.incr count;
        total := !total +. dur_us;
        mx := Float.max !mx dur_us;
        minor := !minor +. minor_words)
    events;
  Hashtbl.fold
    (fun (cat, name) (count, total_us, max_us, minor) out ->
      {
        name;
        cat;
        count = !count;
        total_ms = !total_us /. 1e3;
        mean_ms = !total_us /. 1e3 /. float_of_int !count;
        max_ms = !max_us /. 1e3;
        minor_mwords = !minor /. 1e6;
      }
      :: out)
    acc []
  |> List.sort (fun a b ->
         match Float.compare b.total_ms a.total_ms with
         | 0 -> compare (a.cat, a.name) (b.cat, b.name)
         | c -> c)

let ms f = Printf.sprintf "%.2f" f

let render events (m : Obs.metrics) =
  let buf = Buffer.create 2048 in
  let stats = span_stats events in
  if stats <> [] then begin
    let table =
      Table.create ~title:"Observability summary: spans"
        ~columns:
          Table.
            [
              ("cat", Left); ("span", Left); ("count", Right);
              ("total ms", Right); ("mean ms", Right); ("max ms", Right);
              ("minor Mw", Right);
            ]
        ()
    in
    List.iter
      (fun s ->
        Table.add_row table
          [
            s.cat; s.name; string_of_int s.count; ms s.total_ms;
            ms s.mean_ms; ms s.max_ms; Printf.sprintf "%.3f" s.minor_mwords;
          ])
      stats;
    Buffer.add_string buf (Table.render table)
  end;
  let nonzero_counters = List.filter (fun (_, v) -> v <> 0) m.Obs.counters in
  let nonzero_gauges = List.filter (fun (_, v) -> v <> 0.) m.Obs.gauges in
  if nonzero_counters <> [] || nonzero_gauges <> [] then begin
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    let table =
      Table.create ~title:"Observability summary: counters and gauges"
        ~columns:Table.[ ("metric", Left); ("value", Right) ]
        ()
    in
    List.iter
      (fun (n, v) -> Table.add_row table [ n; string_of_int v ])
      nonzero_counters;
    List.iter
      (fun (n, v) -> Table.add_row table [ n; Printf.sprintf "%.3f" v ])
      nonzero_gauges;
    Buffer.add_string buf (Table.render table)
  end;
  let observed =
    List.filter
      (fun (_, bs) -> List.exists (fun (_, c) -> c > 0) bs)
      m.Obs.histograms
  in
  if observed <> [] then begin
    if Buffer.length buf > 0 then Buffer.add_char buf '\n';
    let table =
      Table.create ~title:"Observability summary: histograms"
        ~columns:Table.[ ("histogram", Left); ("le", Right); ("count", Right) ]
        ()
    in
    List.iter
      (fun (n, bs) ->
        List.iter
          (fun (edge, count) ->
            if count > 0 then
              Table.add_row table
                [
                  n;
                  (if Float.is_finite edge then Printf.sprintf "%g" edge
                   else "+Inf");
                  string_of_int count;
                ])
          bs)
      observed;
    Buffer.add_string buf (Table.render table)
  end;
  if Buffer.length buf = 0 then "Observability summary: nothing recorded\n"
  else Buffer.contents buf
