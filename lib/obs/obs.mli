(** Domain-aware tracing and metrics for the solver stack.

    One global recorder with a zero-cost no-op default: every
    instrumentation entry point first reads a single [Atomic] flag and
    returns immediately when recording is off, so uninstrumented runs
    pay one load and one branch per call site. The CLI ([--trace],
    [--metrics], [--obs-summary]) and tests flip the flag with
    {!enable}.

    {2 Model}

    - {e Spans} are hierarchical timed regions. Each domain keeps its
      own span stack (via [Domain.DLS] keyed by [Domain.self ()]), so
      portfolio workers nest independently; a finished span records its
      wall-clock interval, nesting depth, domain id and the
      [Gc.quick_stat] minor/major-word deltas observed by that domain.
    - {e Instants} are point events (a preemption, an incumbent
      improvement).
    - {e Counters}, {e gauges} and {e histograms} are process-global
      metrics backed by [Atomic], so worker domains record without
      locks. Handles are created once (typically at module top level)
      and are valid whether or not recording is on.

    Timing uses the monotonic source in {!Clock}, so an NTP step cannot
    corrupt span durations or latency histograms. Timestamps are
    microseconds since {!enable}. *)

(** {1 Recording control} *)

val enabled : unit -> bool
(** One relaxed [Atomic.get]; the branch every entry point takes. *)

val enable : ?events:bool -> unit -> unit
(** Clear previously recorded events and metric values, set the trace
    epoch to now, and start recording. [events:false] records metrics
    only: spans and instants stay no-ops, so a long-running process (the
    serve daemon) can keep counters live without accumulating an
    unbounded event buffer. Default [true]. *)

val disable : unit -> unit
(** Stop recording. Recorded events and metric values stay readable. *)

val reset : unit -> unit
(** Clear events and zero every registered metric without changing the
    enabled flag. Registered handles remain valid. *)

(** {1 Ambient request id} *)

val with_request : string -> (unit -> 'a) -> 'a
(** [with_request id f] runs [f ()] with [id] as the calling domain's
    ambient request id: spans finished inside [f] gain a ["request_id"]
    arg and {!Log} lines emitted inside [f] carry it, without threading
    the id through every signature. Restores the previous ambient id on
    exit (also on exception); nesting is safe. Domain-local — a worker
    domain running a job never sees another domain's id. *)

val current_request : unit -> string option
(** The calling domain's ambient request id, if inside {!with_request}. *)

(** {1 Spans and instants} *)

val with_span :
  ?cat:string -> ?args:(string * string) list -> string -> (unit -> 'a) -> 'a
(** [with_span ~cat name f] runs [f ()]; when recording, the interval is
    pushed on the calling domain's span stack and recorded on exit
    (also on exception). [cat] defaults to ["span"]. *)

val instant : ?cat:string -> ?args:(string * string) list -> string -> unit
(** A point event at the current time on the calling domain. *)

(** {1 Metrics} *)

type counter

val counter : string -> counter
(** Find-or-create the counter registered under [name]. Idempotent:
    the same name always yields the same underlying cell. *)

val incr : counter -> unit
val add : counter -> int -> unit
(** Lock-free ([Atomic.fetch_and_add]); no-ops while disabled. *)

val counter_value : counter -> int

type gauge

val gauge : string -> gauge
val set_gauge : gauge -> float -> unit

val add_gauge : gauge -> float -> unit
(** Atomic relative adjustment (CAS loop) — lets concurrent writers
    keep a population gauge (e.g. jobs per state) exact where
    read-modify-[set_gauge] would race. No-ops while disabled. *)

val gauge_value : gauge -> float

type histogram

val histogram : ?edges:float array -> string -> histogram
(** Cumulative-style buckets: an observation [v] lands in the first
    bucket with [v <= edges.(i)], else in the overflow bucket. [edges]
    must be strictly increasing (checked on first registration; later
    calls with the same name reuse the registered edges). Default
    edges suit millisecond latencies: 0.1 … 5000. *)

val observe : histogram -> float -> unit

val histogram_counts : histogram -> (float * int) list
(** [(upper_edge, count)] per bucket; the final pair is
    [(infinity, overflow_count)]. *)

val histogram_sum : histogram -> float
(** Running sum of all observed values (the Prometheus [_sum] series). *)

(** {1 Introspection (exporters, summary, tests)} *)

type event =
  | Span of {
      name : string;
      cat : string;
      domain : int;
      depth : int;  (** 0 = outermost on its domain *)
      ts_us : float;  (** start, microseconds since {!enable} *)
      dur_us : float;
      minor_words : float;  (** allocation delta over the span *)
      major_words : float;
      args : (string * string) list;
    }
  | Instant of {
      name : string;
      cat : string;
      domain : int;
      ts_us : float;
      args : (string * string) list;
    }

val events : unit -> event list
(** Recorded events in start-timestamp order (stable for ties). *)

type metrics = {
  counters : (string * int) list;  (** name order *)
  gauges : (string * float) list;
  histograms : (string * (float * int) list) list;
  histogram_sums : (string * float) list;  (** same name order *)
}

val metrics : unit -> metrics
(** Snapshot of every registered metric (including zero-valued ones). *)
