(** Leveled structured logging: one JSON object per line.

    Same contract as the rest of {!Obs}: the default state is a no-op
    and every emit site pays one [Atomic.get] plus a branch until
    {!enable} turns logging on. Lines are rendered with {!Json} (so
    [Json.check_lines] accepts any log output) and written under a
    mutex so concurrent domains never interleave bytes within a line.

    Every line carries [ts] (wall-clock epoch seconds — logs are for
    correlation with the outside world, unlike span durations which use
    the monotonic {!Clock}), [level], [event], the ambient
    [request_id] when inside {!Obs.with_request}, and any caller
    fields.

    Warn/error lines are deduplicated per event name: after the first
    line, repeats of the same event within {!val-window} seconds are
    suppressed and counted; the next emitted line carries a
    [suppressed] field with the count. Debug/info lines are never
    deduplicated. *)

type level = Debug | Info | Warn | Error

val level_to_string : level -> string
(** ["debug"], ["info"], ["warn"], ["error"]. *)

val level_of_string : string -> level option
(** Inverse of {!level_to_string}; [None] on anything else. *)

(** {1 Lifecycle} *)

val enable : ?level:level -> ?file:string -> unit -> unit
(** Start emitting lines at [level] (default [Info]) and above. With
    [file], lines append to that path (opened immediately; raises
    [Sys_error] if it cannot be opened); otherwise they go to stderr.
    Calling {!enable} again atomically switches level and sink (the
    previous file sink is closed) — idempotent in the sense that
    enabling twice with the same arguments is harmless. *)

val disable : unit -> unit
(** Back to the no-op default. A file sink is flushed and closed. *)

val enabled : level -> bool
(** [enabled l] is true when a line at level [l] would be emitted.
    Guard for expensive field construction. *)

(** {1 Emitting} *)

val debug : ?fields:(string * Json.t) list -> string -> unit
val info : ?fields:(string * Json.t) list -> string -> unit
val warn : ?fields:(string * Json.t) list -> string -> unit

val error : ?fields:(string * Json.t) list -> string -> unit
(** [error ~fields event] emits
    [{"ts":…,"level":"error","event":event,…fields}]. The [event]
    string is the dedup key for warn/error rate limiting. *)

(** {1 Dedup window} *)

val window : float
(** Seconds within which repeated warn/error events (same name) are
    suppressed: 1.0. *)
