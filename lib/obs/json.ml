type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

let to_string v =
  let buf = Buffer.create 1024 in
  let rec emit = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Int i -> Buffer.add_string buf (string_of_int i)
    | Float f ->
      if Float.is_finite f then
        Buffer.add_string buf (Printf.sprintf "%.3f" f)
      else Buffer.add_string buf "null"
    | String s -> Buffer.add_string buf (escape s)
    | List items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          emit item)
        items;
      Buffer.add_char buf ']'
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (key, value) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (escape key);
          Buffer.add_char buf ':';
          emit value)
        fields;
      Buffer.add_char buf '}'
  in
  emit v;
  Buffer.contents buf

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec member_path path v =
  match path with
  | [] -> Some v
  | key :: rest -> (
    match member key v with
    | None -> None
    | Some inner -> member_path rest inner)

let to_int = function Int i -> Some i | _ -> None

(* ------------------------------------------------------------------ *)
(* Strict recursive-descent well-formedness checker. Recognizes exactly
   RFC 8259 value syntax; reports the byte offset of the first error. *)

exception Bad of int * string

let check s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (match peek () with
          | Some ('"' | '\\' | '/' | 'b' | 'f' | 'n' | 'r' | 't') ->
            advance ();
            loop ()
          | Some 'u' ->
            advance ();
            for _ = 1 to 4 do
              match peek () with
              | Some ('0' .. '9' | 'a' .. 'f' | 'A' .. 'F') -> advance ()
              | _ -> fail "bad \\u escape"
            done;
            loop ()
          | _ -> fail "bad escape")
        | c when Char.code c < 0x20 -> fail "raw control char in string"
        | _ ->
          advance ();
          loop ()
    in
    loop ()
  in
  let number () =
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      while
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          true
        | _ -> false
      do
        advance ()
      done;
      if not !saw then fail "expected digit"
    in
    (* integer part: a single 0, or a nonzero digit then more digits —
       RFC 8259 forbids leading zeros *)
    (match peek () with
    | Some '0' -> (
      advance ();
      match peek () with
      | Some '0' .. '9' -> fail "leading zero in number"
      | _ -> ())
    | _ -> digits ());
    (match peek () with
    | Some '.' ->
      advance ();
      digits ()
    | _ -> ());
    match peek () with
    | Some ('e' | 'E') ->
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ()
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "expected a value"
    | Some '"' -> string_lit ()
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then advance ()
      else
        let rec members () =
          skip_ws ();
          string_lit ();
          skip_ws ();
          expect ':';
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ()
          | Some '}' -> advance ()
          | _ -> fail "expected ',' or '}'"
        in
        members ()
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then advance ()
      else
        let rec items () =
          value ();
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items ()
          | Some ']' -> advance ()
          | _ -> fail "expected ',' or ']'"
        in
        items ()
    | Some 't' -> literal "true"
    | Some 'f' -> literal "false"
    | Some 'n' -> literal "null"
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    value ();
    skip_ws ();
    if !pos <> n then fail "trailing garbage"
  with
  | () -> Ok ()
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "invalid JSON at byte %d: %s" at msg)

(* The parser shares the checker's grammar (and error wording) but
   builds the value as it goes. Kept separate so [check] stays an
   allocation-free validator for large exporter outputs. *)
let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let fail msg = raise (Bad (!pos, msg)) in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some x when x = c -> advance ()
    | _ -> fail (Printf.sprintf "expected %C" c)
  in
  let literal word =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then pos := !pos + l
    else fail (Printf.sprintf "expected %s" word)
  in
  let string_lit () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' -> (
          advance ();
          match peek () with
          | Some '"' ->
            advance ();
            Buffer.add_char buf '"';
            loop ()
          | Some '\\' ->
            advance ();
            Buffer.add_char buf '\\';
            loop ()
          | Some '/' ->
            advance ();
            Buffer.add_char buf '/';
            loop ()
          | Some 'b' ->
            advance ();
            Buffer.add_char buf '\b';
            loop ()
          | Some 'f' ->
            advance ();
            Buffer.add_char buf '\012';
            loop ()
          | Some 'n' ->
            advance ();
            Buffer.add_char buf '\n';
            loop ()
          | Some 'r' ->
            advance ();
            Buffer.add_char buf '\r';
            loop ()
          | Some 't' ->
            advance ();
            Buffer.add_char buf '\t';
            loop ()
          | Some 'u' ->
            advance ();
            let code = ref 0 in
            for _ = 1 to 4 do
              (match peek () with
              | Some ('0' .. '9' as c) ->
                code := (!code * 16) + (Char.code c - Char.code '0')
              | Some ('a' .. 'f' as c) ->
                code := (!code * 16) + (Char.code c - Char.code 'a' + 10)
              | Some ('A' .. 'F' as c) ->
                code := (!code * 16) + (Char.code c - Char.code 'A' + 10)
              | _ -> fail "bad \\u escape");
              advance ()
            done;
            (* UTF-8 encode the code point (surrogates pass through as
               replacement-free 3-byte sequences; exporters never emit
               them and round-tripping is not required to pair them) *)
            let c = !code in
            if c < 0x80 then Buffer.add_char buf (Char.chr c)
            else if c < 0x800 then begin
              Buffer.add_char buf (Char.chr (0xC0 lor (c lsr 6)));
              Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
            end
            else begin
              Buffer.add_char buf (Char.chr (0xE0 lor (c lsr 12)));
              Buffer.add_char buf (Char.chr (0x80 lor ((c lsr 6) land 0x3F)));
              Buffer.add_char buf (Char.chr (0x80 lor (c land 0x3F)))
            end;
            loop ()
          | _ -> fail "bad escape")
        | c when Char.code c < 0x20 -> fail "raw control char in string"
        | c ->
          advance ();
          Buffer.add_char buf c;
          loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let number () =
    let start = !pos in
    (match peek () with Some '-' -> advance () | _ -> ());
    let digits () =
      let saw = ref false in
      while
        match peek () with
        | Some '0' .. '9' ->
          saw := true;
          true
        | _ -> false
      do
        advance ()
      done;
      if not !saw then fail "expected digit"
    in
    (match peek () with
    | Some '0' -> (
      advance ();
      match peek () with
      | Some '0' .. '9' -> fail "leading zero in number"
      | _ -> ())
    | _ -> digits ());
    let fractional = ref false in
    (match peek () with
    | Some '.' ->
      fractional := true;
      advance ();
      digits ()
    | _ -> ());
    (match peek () with
    | Some ('e' | 'E') ->
      fractional := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      digits ()
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !fractional then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec value () =
    skip_ws ();
    match peek () with
    | None -> fail "expected a value"
    | Some '"' -> String (string_lit ())
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else
        let rec members acc =
          skip_ws ();
          let key = string_lit () in
          skip_ws ();
          expect ':';
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            members ((key, v) :: acc)
          | Some '}' ->
            advance ();
            Obj (List.rev ((key, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        members []
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else
        let rec items acc =
          let v = value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        items []
    | Some 't' ->
      literal "true";
      Bool true
    | Some 'f' ->
      literal "false";
      Bool false
    | Some 'n' ->
      literal "null";
      Null
    | Some ('-' | '0' .. '9') -> number ()
    | Some c -> fail (Printf.sprintf "unexpected %C" c)
  in
  match
    let v = value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Bad (at, msg) ->
    Error (Printf.sprintf "invalid JSON at byte %d: %s" at msg)

let check_lines s =
  let rec loop k = function
    | [] -> Ok ()
    | line :: rest ->
      if String.trim line = "" then loop (k + 1) rest
      else (
        match check line with
        | Ok () -> loop (k + 1) rest
        | Error msg -> Error (Printf.sprintf "line %d: %s" k msg))
  in
  loop 1 (String.split_on_char '\n' s)
