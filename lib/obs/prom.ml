(* Prometheus text exposition. The Obs registry is a flat name->cell
   table; labels are a naming convention decoded here at render time
   (name{key="value",...}), so the hot path never touches label
   machinery. *)

let prefix = "soctest_"

let sanitize name =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
      | _ -> '_')
    name

(* Decode an optional {k="v",...} suffix. Values may contain backslash
   escapes; a malformed suffix is treated as part of the name (it will
   be sanitized away) rather than raising — exposition must not fail a
   scrape over one odd registry name. *)
let parse_labels s =
  let n = String.length s in
  let buf = Buffer.create 16 in
  let labels = ref [] in
  let fail = ref false in
  let i = ref 0 in
  let read_until_eq () =
    Buffer.clear buf;
    while !i < n && s.[!i] <> '=' && not !fail do
      Buffer.add_char buf s.[!i];
      incr i
    done;
    if !i >= n then fail := true else incr i (* skip '=' *);
    Buffer.contents buf
  in
  let read_quoted () =
    if !i >= n || s.[!i] <> '"' then fail := true
    else begin
      incr i;
      Buffer.clear buf;
      let fin = ref false in
      while (not !fin) && not !fail do
        if !i >= n then fail := true
        else
          match s.[!i] with
          | '"' ->
            incr i;
            fin := true
          | '\\' when !i + 1 < n ->
            Buffer.add_char buf s.[!i + 1];
            i := !i + 2
          | c ->
            Buffer.add_char buf c;
            incr i
      done
    end;
    Buffer.contents buf
  in
  while !i < n && not !fail do
    let key = read_until_eq () in
    let v = read_quoted () in
    if not !fail then begin
      labels := (key, v) :: !labels;
      if !i < n then
        if s.[!i] = ',' then incr i
        else fail := true
    end
  done;
  if !fail then None else Some (List.rev !labels)

let base_name name =
  match String.index_opt name '{' with
  | Some lb when name.[String.length name - 1] = '}' -> (
    let inside = String.sub name (lb + 1) (String.length name - lb - 2) in
    match parse_labels inside with
    | Some labels -> (prefix ^ sanitize (String.sub name 0 lb), labels)
    | None -> (prefix ^ sanitize name, []))
  | _ -> (prefix ^ sanitize name, [])

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let labels_to_string = function
  | [] -> ""
  | labels ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) ->
             Printf.sprintf "%s=\"%s\"" (sanitize k) (escape_label_value v))
           labels)
    ^ "}"

(* Prometheus accepts any float literal; integral values render without
   a fraction part so counters read naturally. *)
let number v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let edge_to_string e =
  if e = Float.infinity then "+Inf" else Printf.sprintf "%g" e

(* Group series by base name, keeping first-seen order, so all the
   label variants of one metric sit under a single # TYPE line. *)
let group series =
  let tbl = Hashtbl.create 16 in
  let order = ref [] in
  List.iter
    (fun (name, v) ->
      let base, labels = base_name name in
      (match Hashtbl.find_opt tbl base with
      | None ->
        Hashtbl.add tbl base [ (labels, v) ];
        order := base :: !order
      | Some prev -> Hashtbl.replace tbl base ((labels, v) :: prev)))
    series;
  List.rev_map (fun base -> (base, List.rev (Hashtbl.find tbl base))) !order
  |> List.rev

let render_metrics (m : Obs.metrics) =
  let buf = Buffer.create 4096 in
  let type_line base kind =
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" base kind)
  in
  let sample name labels value =
    Buffer.add_string buf
      (Printf.sprintf "%s%s %s\n" name (labels_to_string labels) value)
  in
  List.iter
    (fun (base, variants) ->
      type_line base "counter";
      List.iter
        (fun (labels, v) -> sample base labels (string_of_int v))
        variants)
    (group m.Obs.counters);
  List.iter
    (fun (base, variants) ->
      type_line base "gauge";
      List.iter (fun (labels, v) -> sample base labels (number v)) variants)
    (group m.Obs.gauges);
  List.iter
    (fun (base, variants) ->
      type_line base "histogram";
      List.iter
        (fun (labels, (buckets, sum)) ->
          (* exposition buckets are cumulative; Obs buckets are not *)
          let total = ref 0 in
          List.iter
            (fun (edge, count) ->
              total := !total + count;
              sample (base ^ "_bucket")
                (labels @ [ ("le", edge_to_string edge) ])
                (string_of_int !total))
            buckets;
          sample (base ^ "_sum") labels (number sum);
          sample (base ^ "_count") labels (string_of_int !total))
        variants)
    (group
       (List.map
          (fun (name, buckets) ->
            let sum =
              match List.assoc_opt name m.Obs.histogram_sums with
              | Some s -> s
              | None -> 0.
            in
            (name, (buckets, sum)))
          m.Obs.histograms));
  Buffer.contents buf

let render () = render_metrics (Obs.metrics ())
