(* Structured JSON logging. The off state costs one Atomic.get and a
   branch per call site (same discipline as Obs metrics); the on state
   renders a Json.Obj per line and writes it whole under a mutex so
   multi-domain bursts stay line-atomic. *)

type level = Debug | Info | Warn | Error

let level_to_string = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" -> Some Warn
  | "error" -> Some Error
  | _ -> None

let severity = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

(* -1 = disabled. A single int atomic keeps the emit-site fast path to
   one load and one compare. *)
let threshold = Atomic.make (-1)

let enabled l =
  let t = Atomic.get threshold in
  t >= 0 && severity l >= t

(* ------------------------------------------------------------------ *)
(* sink *)

let sink_lock = Mutex.create ()
let sink_chan : out_channel option ref = ref None (* None = stderr *)

let with_sink f =
  Mutex.lock sink_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock sink_lock) f

let close_sink_locked () =
  match !sink_chan with
  | Some oc ->
    (try close_out oc with Sys_error _ -> ());
    sink_chan := None
  | None -> ()

(* ------------------------------------------------------------------ *)
(* warn/error dedup *)

let window = 1.0

type dedup_entry = { mutable last_emit : float; mutable suppressed : int }

let dedup : (string, dedup_entry) Hashtbl.t = Hashtbl.create 16

(* Returns [None] when the line should be dropped, [Some n] with the
   number of drops since the last emitted line otherwise. Monotonic
   time: a wall-clock step must not re-open or jam the window. *)
let dedup_admit event =
  let now = Clock.now_s () in
  match Hashtbl.find_opt dedup event with
  | None ->
    Hashtbl.replace dedup event { last_emit = now; suppressed = 0 };
    Some 0
  | Some e when now -. e.last_emit < window ->
    e.suppressed <- e.suppressed + 1;
    None
  | Some e ->
    let n = e.suppressed in
    e.last_emit <- now;
    e.suppressed <- 0;
    Some n

(* ------------------------------------------------------------------ *)
(* emit *)

let emit level event fields =
  if enabled level then
    with_sink (fun () ->
        let admit =
          match level with
          | Warn | Error -> dedup_admit event
          | Debug | Info -> Some 0
        in
        match admit with
        | None -> ()
        | Some suppressed ->
          let base =
            [
              ("ts", Json.Float (Unix.gettimeofday ()));
              ("level", Json.String (level_to_string level));
              ("event", Json.String event);
            ]
          in
          let rid =
            match Obs.current_request () with
            | Some id -> [ ("request_id", Json.String id) ]
            | None -> []
          in
          let supp =
            if suppressed > 0 then [ ("suppressed", Json.Int suppressed) ]
            else []
          in
          let line = Json.to_string (Json.Obj (base @ rid @ supp @ fields)) in
          let oc = match !sink_chan with Some oc -> oc | None -> stderr in
          output_string oc line;
          output_char oc '\n';
          flush oc)

let debug ?(fields = []) event = emit Debug event fields
let info ?(fields = []) event = emit Info event fields
let warn ?(fields = []) event = emit Warn event fields
let error ?(fields = []) event = emit Error event fields

(* ------------------------------------------------------------------ *)
(* lifecycle *)

let enable ?(level = Info) ?file () =
  with_sink (fun () ->
      close_sink_locked ();
      (match file with
      | Some path ->
        sink_chan :=
          Some
            (open_out_gen [ Open_append; Open_creat; Open_wronly ] 0o644 path)
      | None -> ());
      Hashtbl.reset dedup;
      Atomic.set threshold (severity level))

let disable () =
  Atomic.set threshold (-1);
  with_sink close_sink_locked
