/* Monotonic clock shim. POSIX clock_gettime(CLOCK_MONOTONIC) where it
   exists, falling back to gettimeofday on platforms without it — the
   fallback loses monotonicity but keeps the same unit and epoch-free
   semantics, so callers never have to care which source they got. */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#include <time.h>
#include <sys/time.h>

CAMLprim value soctest_clock_monotonic_ns(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  {
    struct timespec ts;
    if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
      return caml_copy_int64((int64_t)ts.tv_sec * 1000000000 +
                             (int64_t)ts.tv_nsec);
  }
#endif
  {
    struct timeval tv;
    gettimeofday(&tv, NULL);
    return caml_copy_int64((int64_t)tv.tv_sec * 1000000000 +
                           (int64_t)tv.tv_usec * 1000);
  }
}
