(** Monotonic time for durations and latency measurement.

    [Unix.gettimeofday] follows wall-clock adjustments: an NTP step
    mid-span shifts every in-flight measurement, and a large backwards
    step can turn a latency observation negative (silently clamped to
    zero until now — corrupting histograms either way). Everything in
    the repo that measures {e durations} goes through this module
    instead; wall-clock time remains the right source for log
    timestamps ({!Log}) and absolute deadlines
    ({!Soctest_core.Budget}).

    Backed by [clock_gettime(CLOCK_MONOTONIC)] via a tiny C stub, with
    a [gettimeofday] fallback compiled in for platforms without a
    monotonic clock. The epoch is arbitrary (boot time on Linux): only
    differences of readings are meaningful. *)

val monotonic_ns : unit -> int64
(** Raw reading of the monotonic source, nanoseconds. *)

val now_us : unit -> float
(** Monotonic microseconds. Differences are NTP-step-proof. *)

val now_ms : unit -> float
(** Monotonic milliseconds — the unit latency histograms observe. *)

val now_s : unit -> float
(** Monotonic seconds. *)
