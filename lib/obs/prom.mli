(** Prometheus text-format exposition of the {!Obs} metric registry.

    Serves [GET /metrics]. Every registered counter, gauge and
    histogram is rendered; names are sanitized to the Prometheus
    alphabet ([[a-zA-Z0-9_:]], dots become underscores) and prefixed
    with [soctest_].

    Labels ride inside the {!Obs} registry name: a metric registered as
    [serve.requests{endpoint="/v1/solve",status="200"}] renders as the
    series [soctest_serve_requests] with those labels — the registry
    itself stays a flat name->cell table and the label convention is
    purely a rendering contract. Series sharing a base name share one
    [# TYPE] line.

    Histograms render cumulatively per the exposition format: one
    [_bucket] series per upper edge plus [le="+Inf"], then [_sum] and
    [_count]; [_count] equals the [+Inf] bucket and [_sum] is
    {!Obs.histogram_sum}. Label values are escaped (backslash, double
    quote, newline). *)

val render_metrics : Obs.metrics -> string
(** Render a snapshot (deterministic; what tests check). *)

val render : unit -> string
(** [render_metrics (Obs.metrics ())]. *)

val base_name : string -> string * (string * string) list
(** Split a registry name into its sanitized, [soctest_]-prefixed base
    name and its decoded label list ([[]] when the name carries no
    [{…}] suffix). Exposed for tests. *)
