(** Serialize recorded {!Obs} data.

    Two formats: a Chrome [trace_event] JSON document (open it at
    [chrome://tracing] or {:https://ui.perfetto.dev}), and a JSONL
    stream (one event object per line, metrics appended last) for
    ad-hoc processing with [jq]-style tools. *)

val chrome_trace :
  ?process_name:string -> Obs.event list -> Obs.metrics -> string
(** A [{"traceEvents": [...]}] document. Spans become ["ph":"X"]
    complete events ([tid] = domain id, GC word deltas under [args]),
    instants become ["ph":"i"] thread-scoped events, and each counter
    and gauge becomes one final ["ph":"C"] counter sample. Thread-name
    metadata labels every domain. [process_name] defaults to
    ["soctest"]. *)

val jsonl : Obs.event list -> Obs.metrics -> string
(** One JSON object per line: [{"type":"span",...}] /
    [{"type":"instant",...}] in timestamp order, then
    [{"type":"counter"|"gauge"|"histogram",...}] per metric. *)
