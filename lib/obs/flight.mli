(** Flight recorder: the last N completed requests, always on.

    A fixed-capacity ring of per-request records (id, endpoint, status,
    per-phase timings, cache tier, store-audit flags). Writers are
    lock-free — one [Atomic.fetch_and_add] to claim a slot and one
    [Atomic.set] to publish an immutable record — so recording a
    completed request costs nanoseconds and the recorder can stay
    enabled in production. Readers snapshot without blocking writers;
    under concurrent writes a snapshot may miss an in-flight record,
    never tear one.

    The serving stack exposes the ring at [GET /v1/debug/requests] and
    dumps records through {!Log} when a response is 5xx or slower than
    [--slow-ms]. *)

type record = {
  id : string;  (** the request's [x-request-id] *)
  endpoint : string;
  status : int;  (** HTTP status of the response *)
  total_ms : float;  (** end-to-end, admission to response written *)
  phases : (string * float) list;
      (** ordered [(phase, ms)] decomposition of [total_ms]: queue,
          prep, cache_probe, disk_audit, solve, audit, render — only
          phases that occurred are present *)
  tier : string;
      (** which tier answered: ["memory"], ["store"], ["solve"], or
          ["-"] for requests that never reached the engine *)
  store_rejected : bool;  (** a store load failed its audit *)
  healed : bool;  (** the store healed a rejected entry *)
  slow : bool;  (** exceeded the server's [--slow-ms] threshold *)
}

type t

val create : capacity:int -> t
(** [capacity] must be positive. *)

val capacity : t -> int

val record : t -> record -> unit
(** Publish a completed request, overwriting the oldest when full. *)

val recent : ?limit:int -> t -> record list
(** Newest first; at most [limit] (default: everything retained). *)

val to_json : record -> Json.t
(** The wire shape served by [/v1/debug/requests] and embedded in slow
    and 5xx log lines. *)
