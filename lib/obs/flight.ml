(* Lock-free ring buffer of completed-request records. Each slot holds
   an immutable record behind its own Atomic, so a write is claim-slot
   (fetch_and_add) + publish (set); readers see either the old or the
   new record, never a torn one. *)

type record = {
  id : string;
  endpoint : string;
  status : int;
  total_ms : float;
  phases : (string * float) list;
  tier : string;
  store_rejected : bool;
  healed : bool;
  slow : bool;
}

type t = {
  slots : record option Atomic.t array;
  next : int Atomic.t;  (* monotonically increasing claim counter *)
}

let create ~capacity =
  if capacity <= 0 then invalid_arg "Flight.create: capacity must be positive";
  {
    slots = Array.init capacity (fun _ -> Atomic.make None);
    next = Atomic.make 0;
  }

let capacity t = Array.length t.slots

let record t r =
  let n = Atomic.fetch_and_add t.next 1 in
  Atomic.set t.slots.(n mod Array.length t.slots) (Some r)

let recent ?limit t =
  let cap = Array.length t.slots in
  let n = Atomic.get t.next in
  let want = match limit with Some l -> max 0 (min l cap) | None -> cap in
  (* walk backwards from the most recently claimed slot; prepending
     while walking newest->oldest leaves the result oldest-first, so
     reverse once at the end to hand back newest-first *)
  let rec gather i got acc =
    if got >= want || i < n - cap || i < 0 then acc
    else
      match Atomic.get t.slots.(i mod cap) with
      | Some r -> gather (i - 1) (got + 1) (r :: acc)
      | None -> gather (i - 1) got acc
  in
  List.rev (gather (n - 1) 0 [])

let to_json r =
  Json.Obj
    [
      ("id", Json.String r.id);
      ("endpoint", Json.String r.endpoint);
      ("status", Json.Int r.status);
      ("total_ms", Json.Float r.total_ms);
      ( "phases",
        Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) r.phases) );
      ("tier", Json.String r.tier);
      ("store_rejected", Json.Bool r.store_rejected);
      ("healed", Json.Bool r.healed);
      ("slow", Json.Bool r.slow);
    ]
