module O = Soctest_core.Optimizer
module Improve = Soctest_core.Improve
module Engine = Soctest_engine.Engine
module LB = Soctest_core.Lower_bound
module Constraint_def = Soctest_constraints.Constraint_def
module Soc_def = Soctest_soc.Soc_def

type row = {
  soc_name : string;
  width : int;
  grid_best : int;
  polished : int;
  annealed : int;
  lower_bound : int;
  evaluations : int;
}

let run ?socs ?(widths = [ 16; 32; 48; 64 ]) () =
  let socs =
    match socs with Some s -> s | None -> Soctest_soc.Benchmarks.all ()
  in
  List.concat_map
    (fun (soc_name, soc) ->
      (* one engine cache per SOC: the Pareto analyses are shared across
         widths, and the grid/polish/anneal searches dedup the width
         vectors they revisit *)
      let engine = Engine.create () in
      let eval = Engine.evaluator engine in
      let prepared = Engine.prepare engine soc in
      let constraints =
        Constraint_def.unconstrained ~core_count:(Soc_def.core_count soc)
      in
      List.map
        (fun width ->
          let seed =
            (Engine.solve engine
               (Engine.request ~grid:Engine.default_grid soc
                  ~tam_width:width ~constraints ()))
              .Engine.result
          in
          let report =
            Improve.polish ~eval prepared ~tam_width:width ~constraints seed
          in
          let annealed =
            (Soctest_core.Anneal.search ~iterations:600 ~eval prepared
               ~tam_width:width ~constraints seed)
              .Soctest_core.Anneal.result
          in
          {
            soc_name;
            width;
            grid_best = report.Improve.initial_time;
            polished = report.Improve.result.O.testing_time;
            annealed = annealed.O.testing_time;
            lower_bound = LB.compute prepared ~tam_width:width;
            evaluations = report.Improve.evaluations;
          })
        widths)
    socs

let to_table rows =
  let open Soctest_report in
  let table =
    Table.create
      ~title:
        "Search extensions on per-core TAM widths: the paper's parameter \
         grid vs hill-climbing polish vs simulated annealing"
      ~columns:
        [
          ("SOC", Table.Left);
          ("W", Table.Right);
          ("LB", Table.Right);
          ("grid best", Table.Right);
          ("polished", Table.Right);
          ("annealed", Table.Right);
          ("best gain", Table.Right);
          ("re-runs", Table.Right);
        ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          r.soc_name;
          string_of_int r.width;
          string_of_int r.lower_bound;
          string_of_int r.grid_best;
          string_of_int r.polished;
          string_of_int r.annealed;
          Printf.sprintf "%.1f%%"
            (100.
            *. float_of_int (r.grid_best - min r.polished r.annealed)
            /. float_of_int r.grid_best);
          string_of_int r.evaluations;
        ])
    rows;
  Table.render table
