module Soc_def = Soctest_soc.Soc_def
module Core_def = Soctest_soc.Core_def
module Optimizer = Soctest_core.Optimizer
module Flow = Soctest_engine.Flow

type result = {
  soc_name : string;
  tam_width : int;
  schedule : Soctest_tam.Schedule.t;
  gantt : string;
  legend : string;
}

let run ?soc ?(tam_width = 16) ?(columns = 72) () =
  let soc =
    match soc with Some s -> s | None -> Soctest_soc.Benchmarks.d695 ()
  in
  let r = Flow.solve (Flow.spec soc ~tam_width) in
  let schedule = r.Optimizer.schedule in
  {
    soc_name = soc.Soc_def.name;
    tam_width;
    schedule;
    gantt = Soctest_tam.Gantt.render ~columns schedule;
    legend =
      Soctest_tam.Gantt.legend schedule (fun id ->
          (Soc_def.core soc id).Core_def.name);
  }

let render r =
  Printf.sprintf "Fig. 2: rectangle-packed test schedule for %s\n%s%s"
    r.soc_name r.gantt r.legend
