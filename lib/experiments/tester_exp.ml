module Soc_def = Soctest_soc.Soc_def
module O = Soctest_core.Optimizer
module Engine = Soctest_engine.Engine
module Flow = Soctest_engine.Flow
module Constraint_def = Soctest_constraints.Constraint_def
module Tester_image = Soctest_tester.Tester_image
module Multisite = Soctest_tester.Multisite
module Volume = Soctest_core.Volume

type memory_row = {
  width : int;
  time : int;
  volume : int;
  useful : int;
  utilization : float;
}

let default_soc () = Soctest_soc.Benchmarks.d695 ()

let memory_table ?soc ?(widths = [ 8; 16; 24; 32; 48; 64 ]) () =
  let soc = match soc with Some s -> s | None -> default_soc () in
  let engine = Engine.create () in
  let constraints =
    Constraint_def.unconstrained ~core_count:(Soc_def.core_count soc)
  in
  List.map
    (fun width ->
      let r =
        (Engine.solve engine
           (Engine.request soc ~tam_width:width ~constraints ()))
          .Engine.result
      in
      let image = Tester_image.of_schedule r.O.schedule in
      {
        width;
        time = r.O.testing_time;
        volume = image.Tester_image.volume;
        useful = image.Tester_image.useful;
        utilization = Tester_image.utilization image;
      })
    widths

let memory_to_table ~soc_name rows =
  let open Soctest_report in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Tester vector memory per TAM width (%s): V = W x T, useful = \
            busy wire-cycles"
           soc_name)
      ~columns:
        [
          ("W", Table.Right);
          ("T (cycles)", Table.Right);
          ("V (bits)", Table.Right);
          ("useful (bits)", Table.Right);
          ("utilization", Table.Right);
        ]
      ()
  in
  List.iter
    (fun r ->
      Table.add_row table
        [
          string_of_int r.width;
          string_of_int r.time;
          string_of_int r.volume;
          string_of_int r.useful;
          Printf.sprintf "%.1f%%" (100. *. r.utilization);
        ])
    rows;
  Table.render table

let compression_table ?soc ?(densities = [ 0.02; 0.05; 0.10 ]) () =
  let soc = match soc with Some s -> s | None -> default_soc () in
  List.map
    (fun care_density -> Tester_image.compress_soc ~care_density soc)
    densities

let compression_to_table ~soc_name reports =
  let open Soctest_report in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Golomb test-data compression (%s): stimulus volume vs ATPG \
            care-bit density"
           soc_name)
      ~columns:
        [
          ("care density", Table.Right);
          ("raw stimulus (bits)", Table.Right);
          ("compressed (bits)", Table.Right);
          ("ratio", Table.Right);
        ]
      ()
  in
  List.iter
    (fun (r : Tester_image.compression_report) ->
      Table.add_row table
        [
          Printf.sprintf "%.0f%%" (100. *. r.Tester_image.care_density);
          string_of_int r.Tester_image.raw_stimulus_bits;
          string_of_int r.Tester_image.compressed_bits;
          Printf.sprintf "%.2fx" r.Tester_image.ratio;
        ])
    reports;
  Table.render table

let multisite_table ?soc ?(tester = Multisite.default_tester)
    ?(batch_size = 10_000) ?widths () =
  let soc = match soc with Some s -> s | None -> default_soc () in
  let widths =
    match widths with
    | Some ws -> ws
    | None -> List.init 64 (fun k -> k + 1)
  in
  let sweep =
    (Flow.solve_sweep (Flow.sweep_spec soc ~widths ~alphas:[])).Flow.points
    |> List.map (fun p -> (p.Volume.width, p.Volume.time))
  in
  Multisite.evaluate tester ~batch_size sweep

let multisite_to_table ~soc_name ~batch_size points =
  let open Soctest_report in
  let best = Multisite.best points in
  let table =
    Table.create
      ~title:
        (Printf.sprintf
           "Multisite batch planning (%s, %d dies): narrow TAMs buy \
            parallel sites (best marked *)"
           soc_name batch_size)
      ~columns:
        [
          ("W", Table.Right);
          ("T(W)", Table.Right);
          ("sites", Table.Right);
          ("reloads", Table.Right);
          ("batch time", Table.Right);
          ("", Table.Left);
        ]
      ()
  in
  (* show a readable subset: every 4th width plus the best *)
  List.iteri
    (fun k (p : Multisite.point) ->
      if k mod 4 = 3 || p = best then
        Table.add_row table
          [
            string_of_int p.Multisite.width;
            string_of_int p.Multisite.die_time;
            string_of_int p.Multisite.sites;
            string_of_int p.Multisite.reloads;
            string_of_int p.Multisite.batch_time;
            (if p = best then "*" else "");
          ])
    points;
  Table.render table
