module Soc_def = Soctest_soc.Soc_def
module Constraint_def = Soctest_constraints.Constraint_def
module Flow = Soctest_engine.Flow
module Volume = Soctest_core.Volume
module Cost = Soctest_core.Cost
module Plot = Soctest_report.Plot

type result = {
  soc_name : string;
  points : Volume.point list;
  alphas : float * float;
  cost_curves : (int * float) list * (int * float) list;
}

let run ?soc ?(max_width = 80) ?(alphas = (0.5, 0.75)) () =
  let soc =
    match soc with Some s -> s | None -> Soctest_soc.Benchmarks.p22810 ()
  in
  let widths = List.init max_width (fun k -> k + 1) in
  let points =
    (Flow.solve_sweep (Flow.sweep_spec soc ~widths ~alphas:[])).Flow.points
  in
  let a1, a2 = alphas in
  {
    soc_name = soc.Soc_def.name;
    points;
    alphas;
    cost_curves = (Cost.curve ~alpha:a1 points, Cost.curve ~alpha:a2 points);
  }

let panel ~title ~y_label series = Plot.render ~title ~y_label series

let to_plots r =
  let a1, a2 = r.alphas in
  let time_series =
    {
      Plot.label = 'T';
      points =
        List.map
          (fun p -> (p.Volume.width, float_of_int p.Volume.time))
          r.points;
    }
  in
  let volume_series =
    {
      Plot.label = 'V';
      points =
        List.map
          (fun p -> (p.Volume.width, float_of_int p.Volume.volume))
          r.points;
    }
  in
  let cost_series label points = { Plot.label; points } in
  let c1, c2 = r.cost_curves in
  String.concat "\n"
    [
      panel
        ~title:(Printf.sprintf "Fig. 9(a): testing time vs W, %s" r.soc_name)
        ~y_label:"T (cycles)" [ time_series ];
      panel
        ~title:
          (Printf.sprintf "Fig. 9(b): tester data volume vs W, %s"
             r.soc_name)
        ~y_label:"V = W*T (bits)" [ volume_series ];
      panel
        ~title:
          (Printf.sprintf "Fig. 9(c): cost C vs W, alpha=%.2f, %s" a1
             r.soc_name)
        ~y_label:"C" [ cost_series 'C' c1 ];
      panel
        ~title:
          (Printf.sprintf "Fig. 9(d): cost C vs W, alpha=%.2f, %s" a2
             r.soc_name)
        ~y_label:"C" [ cost_series 'C' c2 ];
    ]

let to_csv r =
  let c1, c2 = r.cost_curves in
  let rows =
    List.map2
      (fun p ((_, v1), (_, v2)) ->
        [
          string_of_int p.Volume.width;
          string_of_int p.Volume.time;
          string_of_int p.Volume.volume;
          Printf.sprintf "%.6f" v1;
          Printf.sprintf "%.6f" v2;
        ])
      r.points
      (List.combine c1 c2)
  in
  Soctest_report.Csv.render
    ~header:[ "width"; "time"; "volume"; "cost_a1"; "cost_a2" ]
    ~rows
