module Soc_def = Soctest_soc.Soc_def
module Constraint_def = Soctest_constraints.Constraint_def
module Optimizer = Soctest_core.Optimizer
module Engine = Soctest_engine.Engine
module Flow = Soctest_engine.Flow
module Lower_bound = Soctest_core.Lower_bound

type row = {
  width : int;
  lower_bound : int;
  non_preemptive : int;
  preemptive : int;
  power_constrained : int;
}

type soc_result = { soc_name : string; rows : row list }

let widths_for = function
  | "p34392" -> [ 16; 24; 28; 32 ]
  | _ -> [ 16; 32; 48; 64 ]

let grid quick =
  if quick then ([ 5 ], [ 1 ])
  else ([ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10 ], [ 0; 1; 2; 3; 4 ])

let run_soc ?(quick = false) soc ~widths =
  (* one engine per SOC: the Pareto analyses and any grid points the
     three constraint regimes share are computed once *)
  let engine = Engine.create () in
  let prepared = Engine.prepare engine soc in
  let n = Soc_def.core_count soc in
  let percents, deltas = grid quick in
  let grid = { Engine.default_grid with percents; deltas } in
  let best constraints tam_width =
    (Engine.solve engine
       (Engine.request ~grid soc ~tam_width ~constraints ()))
      .Engine.result
      .Optimizer.testing_time
  in
  let unconstrained = Constraint_def.unconstrained ~core_count:n in
  let preempt_budget = Flow.preemption_budget soc ~limit:2 in
  (* columns differ in exactly one knob each: preemption, then power *)
  let preemptive =
    Constraint_def.make ~core_count:n ~max_preemptions:preempt_budget ()
  in
  let powered =
    Constraint_def.with_power_limit preemptive
      (Some (Flow.default_power_limit soc))
  in
  let rows =
    List.map
      (fun width ->
        {
          width;
          lower_bound = Lower_bound.compute prepared ~tam_width:width;
          non_preemptive = best unconstrained width;
          preemptive = best preemptive width;
          power_constrained = best powered width;
        })
      widths
  in
  { soc_name = soc.Soc_def.name; rows }

let run ?quick () =
  List.map
    (fun (name, soc) -> run_soc ?quick soc ~widths:(widths_for name))
    (Soctest_soc.Benchmarks.all ())

let to_table results =
  let open Soctest_report in
  let table =
    Table.create
      ~title:
        "Table 1: Wrapper/TAM co-optimization and test scheduling \
         (testing time, cycles)"
      ~columns:
        [
          ("SOC", Table.Left);
          ("W", Table.Right);
          ("lower bound", Table.Right);
          ("non-preempt.", Table.Right);
          ("preemptive", Table.Right);
          ("preempt.+power", Table.Right);
        ]
      ()
  in
  List.iteri
    (fun k r ->
      if k > 0 then Table.add_separator table;
      List.iter
        (fun row ->
          Table.add_int_row table r.soc_name
            [
              row.width;
              row.lower_bound;
              row.non_preemptive;
              row.preemptive;
              row.power_constrained;
            ])
        r.rows)
    results;
  Table.render table

let to_csv results =
  let rows =
    List.concat_map
      (fun r ->
        List.map
          (fun row ->
            [
              r.soc_name;
              string_of_int row.width;
              string_of_int row.lower_bound;
              string_of_int row.non_preemptive;
              string_of_int row.preemptive;
              string_of_int row.power_constrained;
            ])
          r.rows)
      results
  in
  Soctest_report.Csv.render
    ~header:
      [
        "soc"; "width"; "lower_bound"; "non_preemptive"; "preemptive";
        "power_constrained";
      ]
    ~rows
