module Soc_def = Soctest_soc.Soc_def
module Constraint_def = Soctest_constraints.Constraint_def
module Flow = Soctest_engine.Flow
module Volume = Soctest_core.Volume
module Cost = Soctest_core.Cost

type soc_result = {
  soc_name : string;
  t_min : int;
  w_at_t_min : int;
  v_min : int;
  w_at_v_min : int;
  evaluations : Cost.evaluation list;
}

let alphas_for = function
  | "d695" -> [ 0.1; 0.3; 0.5 ]
  | "p22810" -> [ 0.01; 0.3; 0.5 ]
  | "p34392" -> [ 0.2; 0.25; 0.3 ]
  | "p93791" -> [ 0.5; 0.95; 0.99 ]
  | _ -> [ 0.25; 0.5; 0.75 ]

let default_widths = List.init 64 (fun k -> k + 1)

let run_soc soc ?(widths = default_widths) ?alphas () =
  let alphas =
    match alphas with Some a -> a | None -> alphas_for soc.Soc_def.name
  in
  (* the p3 flow batches the whole width sweep through one engine, so
     the Pareto analyses are computed once per SOC *)
  let sweep = Flow.solve_sweep (Flow.sweep_spec soc ~widths ~alphas) in
  let points = sweep.Flow.points in
  let tp = Volume.min_time_point points
  and vp = Volume.min_volume_point points in
  {
    soc_name = soc.Soc_def.name;
    t_min = tp.Volume.time;
    w_at_t_min = tp.Volume.width;
    v_min = vp.Volume.volume;
    w_at_v_min = vp.Volume.width;
    evaluations = sweep.Flow.evaluations;
  }

let run () =
  List.map (fun (_, soc) -> run_soc soc ()) (Soctest_soc.Benchmarks.all ())

let to_table results =
  let open Soctest_report in
  let table =
    Table.create
      ~title:
        "Table 2: TAM widths for tester data volume reduction\n\
         (Tmin/Vmin over W in 1..64; W* minimizes C = a*T/Tmin + \
         (1-a)*V/Vmin)"
      ~columns:
        [
          ("SOC", Table.Left);
          ("Tmin", Table.Right);
          ("@W", Table.Right);
          ("Vmin", Table.Right);
          ("@W", Table.Right);
          ("alpha", Table.Right);
          ("Cmin", Table.Right);
          ("W*", Table.Right);
          ("T@W*", Table.Right);
          ("V@W*", Table.Right);
        ]
      ()
  in
  List.iteri
    (fun k r ->
      if k > 0 then Table.add_separator table;
      List.iteri
        (fun j (e : Cost.evaluation) ->
          let first = j = 0 in
          Table.add_row table
            [
              (if first then r.soc_name else "");
              (if first then string_of_int r.t_min else "");
              (if first then string_of_int r.w_at_t_min else "");
              (if first then string_of_int r.v_min else "");
              (if first then string_of_int r.w_at_v_min else "");
              Printf.sprintf "%.2f" e.Cost.alpha;
              Printf.sprintf "%.3f" e.Cost.cost;
              string_of_int e.Cost.effective_width;
              string_of_int e.Cost.time_at;
              string_of_int e.Cost.volume_at;
            ])
        r.evaluations)
    results;
  Table.render table

let to_csv results =
  let rows =
    List.concat_map
      (fun r ->
        List.map
          (fun (e : Cost.evaluation) ->
            [
              r.soc_name;
              string_of_int r.t_min;
              string_of_int r.w_at_t_min;
              string_of_int r.v_min;
              string_of_int r.w_at_v_min;
              Printf.sprintf "%.2f" e.Cost.alpha;
              Printf.sprintf "%.6f" e.Cost.cost;
              string_of_int e.Cost.effective_width;
              string_of_int e.Cost.time_at;
              string_of_int e.Cost.volume_at;
            ])
          r.evaluations)
      results
  in
  Soctest_report.Csv.render
    ~header:
      [
        "soc"; "t_min"; "w_at_t_min"; "v_min"; "w_at_v_min"; "alpha";
        "c_min"; "w_star"; "t_at_w_star"; "v_at_w_star";
      ]
    ~rows
