(** The concurrent scheduling service: a long-lived daemon that
    amortizes the {!Soctest_engine.Engine} caches across requests
    instead of rebuilding them per CLI invocation.

    {2 Endpoints}

    - [POST /v1/solve] — wrapper/TAM co-optimization for one SOC (see
      {!Protocol} for the body). P1/P2 answer one audited schedule; P3
      answers the width-sweep (width, time, volume) points.
    - [POST /v1/check] — audit a {!Soctest_tam.Schedule_io} text with
      {!Soctest_check.Audit.run}; always 200 with the report (a dirty
      schedule is a valid answer here, not a server error).
    - [GET /v1/metrics] — engine cache statistics per tier (the
      in-memory Pareto/eval caches and, when the engine sits on a
      {!Soctest_store.Store}, the disk tier's
      hits/misses/audit-rejects and file statistics) plus every
      {!Soctest_obs.Obs} counter/gauge/histogram, as JSON.
    - [GET /metrics] — the same {!Soctest_obs.Obs} registry in
      Prometheus text format ({!Soctest_obs.Prom}), including
      per-endpoint/per-status request counters and per-endpoint latency
      histograms (millisecond edges).
    - [GET /v1/debug/requests] — the flight recorder: the last
      [flight_capacity] completed requests (newest first; [?limit=N]
      truncates), each with its id, endpoint, status, per-phase timing
      decomposition, cache tier and store-audit flags.
    - [GET /healthz] — liveness: status, uptime, in-flight count.

    {2 Request lifecycle}

    Every request gets an id at parse time: an inbound [x-request-id]
    header is echoed back when it is a sane token, anything else gets a
    fresh {!Ulid}; every response carries the id in its [x-request-id]
    header. On a worker domain the id is ambient
    ({!Soctest_obs.Obs.with_request}) for the whole job, so engine
    spans and store log lines attribute to the request that queued
    them. Completed requests land in the flight recorder with a
    per-phase timing decomposition (queue wait, constraint prep, cache
    probe, disk audit, optimizer time, response audit, render, write —
    monotonic clock); a 5xx response or one slower than [slow_ms] also
    dumps its record through {!Soctest_obs.Log}.

    The accept loop reads and fully validates each request inline
    (malformed framing or JSON never consumes solver capacity), then
    admits solve/check jobs into a bounded in-flight window of
    [queue_depth] requests served by [workers] {!Soctest_portfolio.Pool}
    domains sharing one engine. A full window answers
    [429 Too Many Requests] with [Retry-After] instead of queueing
    unboundedly. A request's [budget_ms] becomes an
    {!Soctest_engine.Engine.Budget} created {e at admission}, so time
    spent waiting behind other jobs consumes the caller's budget and an
    overloaded solve degrades to the best-incumbent [deadline] response
    rather than piling up. Every P1/P2 schedule is re-audited
    ({!Soctest_check.Audit.run}, through the engine's Pareto cache)
    before it is written back; the verdict rides in the response.

    {2 Shutdown}

    {!stop} (wired to SIGINT/SIGTERM by [soctest serve]) makes the
    accept loop exit; {!run} then drains admitted jobs — every accepted
    request is answered — joins the worker domains and closes the
    listener before returning. *)

type config = {
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  workers : int;  (** worker domains solving admitted jobs *)
  queue_depth : int;  (** max admitted-but-unfinished solve/check jobs *)
  max_body : int;  (** request body cap, bytes (413 beyond) *)
  read_timeout_ms : float;  (** per-socket read timeout (408 on expiry) *)
  slow_ms : float option;
      (** dump a request's flight record through {!Soctest_obs.Log}
          when its end-to-end latency exceeds this; [None] disables *)
  flight_capacity : int;  (** completed requests the recorder retains *)
}

val config :
  ?port:int ->
  ?workers:int ->
  ?queue_depth:int ->
  ?max_body:int ->
  ?read_timeout_ms:float ->
  ?slow_ms:float ->
  ?flight_capacity:int ->
  unit ->
  config
(** Defaults: port 8080, workers
    [max 1 (Domain.recommended_domain_count () - 1)], queue depth 64,
    1 MiB bodies, 10 s read timeout, no slow threshold, 256 flight
    records.
    @raise Invalid_argument on non-positive workers/queue depth/body
    cap/flight capacity or a negative timeout/threshold. *)

type t

val create : ?engine:Soctest_engine.Engine.t -> config -> t
(** Bind and listen (loopback) and spawn the worker pool. A fresh
    engine is created when [engine] is omitted; pass one to share its
    caches with other work in the process. When {!Soctest_obs.Obs}
    recording is off, [create] enables metrics-only recording
    ([Obs.enable ~events:false]) so the request-lifecycle metrics are
    live in every embedding; an already-enabled Obs session (e.g. a
    test recording events) is left untouched.
    @raise Unix.Unix_error when the port cannot be bound. *)

val port : t -> int
(** The bound port — the ephemeral one when [config.port] was 0. *)

val engine : t -> Soctest_engine.Engine.t

val flight_recorder : t -> Soctest_obs.Flight.t
(** The server's flight recorder — what [GET /v1/debug/requests]
    reads; exposed for embeddings and tests. *)

val run : t -> unit
(** Serve until {!stop}: accept, validate, admit, answer. Returns only
    after the queue has drained and the workers have been joined.
    Call from the domain that owns the server (tests run it in a
    spawned domain). *)

val stop : t -> unit
(** Ask {!run} to finish (idempotent, safe from signal handlers and
    other domains): no new connections are accepted, admitted jobs
    drain. *)
