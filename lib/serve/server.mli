(** The concurrent scheduling service: a long-lived daemon that
    amortizes the {!Soctest_engine.Engine} caches across requests
    instead of rebuilding them per CLI invocation.

    {2 Endpoints}

    - [POST /v1/solve] — wrapper/TAM co-optimization for one SOC (see
      {!Protocol} for the body). P1/P2 answer one audited schedule; P3
      answers the width-sweep (width, time, volume) points. With
      [?mode=async] the response is [202 Accepted] carrying a job id
      and a [Location] header; the solve proceeds in the background.
    - [GET /v1/jobs/<id>] — poll an async job. While queued/running it
      answers a status document (state, wait/run timings); once done it
      replays the parked solve response verbatim — byte-identical to
      what the sync path would have written; 404 for unknown or
      TTL-expired ids.
    - [DELETE /v1/jobs/<id>] — cancel: a queued job finishes
      immediately (200); a running one has its budget cancelled and
      winds down cooperatively (202, state [cancelling]); an already
      finished job answers 409.
    - [POST /v1/check] — audit a {!Soctest_tam.Schedule_io} text with
      {!Soctest_check.Audit.run}; always 200 with the report (a dirty
      schedule is a valid answer here, not a server error).
    - [GET /v1/metrics] — engine cache statistics per tier, job-store
      population, plus every {!Soctest_obs.Obs}
      counter/gauge/histogram, as JSON.
    - [GET /metrics] — the same {!Soctest_obs.Obs} registry in
      Prometheus text format ({!Soctest_obs.Prom}), including
      per-endpoint/per-status request counters, per-endpoint latency
      histograms and the job-state gauges.
    - [GET /v1/debug/requests] — the flight recorder: the last
      [flight_capacity] completed requests (newest first; [?limit=N]
      truncates), each with its id, endpoint, status, per-phase timing
      decomposition, cache tier and store-audit flags. Async solves
      appear under the [async:/v1/solve] endpoint when they finish.
    - [GET /healthz] — liveness: status, uptime, in-flight count, open
      connections, admission mode.

    {2 Connections}

    HTTP/1.1 keep-alive with pipelining: each accepted connection gets
    its own thread that reads, routes and answers requests in order
    until the client closes or sends [Connection: close], the
    [idle_timeout_ms] expires between requests, [max_conn_requests]
    have been served (the last response says [Connection: close]), or
    the server drains. Bytes past one request's [Content-Length] are
    retained and framed as the next request, so a client may batch
    requests into one send; responses always come back in request
    order. At most [max_connections] connections are open at once —
    beyond that, accepts are answered [503] and closed. Framing errors
    (malformed request line, oversized bodies, mid-request stalls)
    answer once and close; protocol-level errors (bad JSON, unknown
    endpoints) answer and keep the connection, since the framing was
    sound.

    {2 Request lifecycle}

    Every request gets an id at parse time: an inbound [x-request-id]
    header is echoed back when it is a sane token, anything else gets a
    fresh {!Ulid}; every response carries the id in its [x-request-id]
    header. On a worker domain the id is ambient
    ({!Soctest_obs.Obs.with_request}) for the whole job, so engine
    spans and store log lines attribute to the request that queued
    them. Completed requests land in the flight recorder with a
    per-phase timing decomposition (queue wait, constraint prep, cache
    probe, disk audit, optimizer time, response audit, render, write —
    monotonic clock); a 5xx response or one slower than [slow_ms] also
    dumps its record through {!Soctest_obs.Log}.

    {2 Admission}

    Solve/check requests are fully validated on the connection thread
    (malformed JSON never consumes solver capacity), then admitted into
    a bounded in-flight window of [queue_depth] requests served by
    [workers] {!Dispatch} domains sharing one engine. A full window
    answers [429 Too Many Requests] with a [Retry-After] estimated
    from the current backlog and the recent mean handler time. The
    queue is ordered by [admission] mode: {!Dispatch.Edf} (default)
    runs budgeted requests earliest-deadline-first so a short-budget
    request admitted behind a long sweep overtakes it; {!Dispatch.Fifo}
    restores strict admission order. A request's [budget_ms] becomes a
    {!Soctest_core.Budget} created {e at admission}, so time spent
    waiting consumes the caller's budget and an overloaded solve
    degrades to the best-incumbent [deadline] response rather than
    piling up. Every P1/P2 schedule is re-audited
    ({!Soctest_check.Audit.run}) before it is written back; the verdict
    rides in the response. Async jobs hold their admission slot from
    202 to completion — sync and async share one backpressure window —
    and their results are retained in a bounded {!Jobs} store for
    [job_ttl_ms] after finishing.

    {2 Shutdown}

    {!stop} (wired to SIGINT/SIGTERM by [soctest serve]) makes the
    accept loop exit; {!run} then wakes and joins the connection
    threads (each finishes its in-flight request), drains the dispatch
    queue — every admitted request, sync or async, is answered or
    parked in the job store — joins the worker domains and closes the
    listener before returning. *)

type config = {
  port : int;  (** 0 picks an ephemeral port (see {!port}) *)
  workers : int;  (** worker domains solving admitted jobs *)
  queue_depth : int;  (** max admitted-but-unfinished solve/check jobs *)
  max_body : int;  (** request body cap, bytes (413 beyond) *)
  read_timeout_ms : float;  (** mid-request socket stall cap (408) *)
  idle_timeout_ms : float;
      (** kept-alive connection idle cap between requests (silent
          close) *)
  max_connections : int;  (** open-connection cap (503 beyond) *)
  max_conn_requests : int;
      (** requests served per connection before it is closed *)
  admission : Dispatch.mode;  (** queue order: EDF (default) or FIFO *)
  job_capacity : int;  (** async jobs retained at once (503 beyond) *)
  job_ttl_ms : float;  (** finished-job retention before eviction *)
  slow_ms : float option;
      (** dump a request's flight record through {!Soctest_obs.Log}
          when its end-to-end latency exceeds this; [None] disables *)
  flight_capacity : int;  (** completed requests the recorder retains *)
}

val config :
  ?port:int ->
  ?workers:int ->
  ?queue_depth:int ->
  ?max_body:int ->
  ?read_timeout_ms:float ->
  ?idle_timeout_ms:float ->
  ?max_connections:int ->
  ?max_conn_requests:int ->
  ?admission:Dispatch.mode ->
  ?job_capacity:int ->
  ?job_ttl_ms:float ->
  ?slow_ms:float ->
  ?flight_capacity:int ->
  unit ->
  config
(** Defaults: port 8080, workers
    [max 1 (Domain.recommended_domain_count () - 1)], queue depth 64,
    1 MiB bodies, 10 s read timeout, 5 s idle timeout, 64 connections,
    1000 requests per connection, EDF admission,
    {!Jobs.default_capacity} jobs with {!Jobs.default_ttl_ms}
    retention, no slow threshold, 256 flight records.
    @raise Invalid_argument on a non-positive count/cap or a negative
    timeout/threshold. *)

type t

val create : ?engine:Soctest_engine.Engine.t -> config -> t
(** Bind and listen (loopback) and spawn the dispatch workers. A fresh
    engine is created when [engine] is omitted; pass one to share its
    caches with other work in the process. When {!Soctest_obs.Obs}
    recording is off, [create] enables metrics-only recording
    ([Obs.enable ~events:false]) so the request-lifecycle metrics are
    live in every embedding; an already-enabled Obs session (e.g. a
    test recording events) is left untouched.
    @raise Unix.Unix_error when the port cannot be bound. *)

val port : t -> int
(** The bound port — the ephemeral one when [config.port] was 0. *)

val engine : t -> Soctest_engine.Engine.t

val flight_recorder : t -> Soctest_obs.Flight.t
(** The server's flight recorder — what [GET /v1/debug/requests]
    reads; exposed for embeddings and tests. *)

val job_store : t -> Jobs.t
(** The async job store — what [/v1/jobs] reads; exposed for
    embeddings and tests. *)

val run : t -> unit
(** Serve until {!stop}: accept, validate, admit, answer. Returns only
    after the connection threads and the dispatch queue have drained
    and the workers have been joined. Call from the domain that owns
    the server (tests run it in a spawned domain). *)

val stop : t -> unit
(** Ask {!run} to finish (idempotent, safe from signal handlers and
    other domains): no new connections are accepted, open connections
    finish their in-flight request, admitted jobs drain. *)
