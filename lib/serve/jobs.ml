(* The async job store behind POST /v1/solve?mode=async.

   A job is the server-side continuation of a request whose client
   declined to wait: admission already happened (a job holds an
   admission slot until it finishes), the solve runs on a dispatch
   worker, and the rendered response body is parked here for the client
   to collect via GET /v1/jobs/<id>. The store is bounded two ways:
   [capacity] caps retained entries (a full store rejects new
   submissions rather than growing without bound), and [ttl_ms] evicts
   finished entries lazily — every public operation sweeps expired
   entries first, so an abandoned job's result does not outlive its TTL
   by more than the gap to the next store operation.

   Cancellation is cooperative, like every deadline in this codebase:
   DELETE on a queued job finishes it immediately (the dispatch worker
   later finds it finished and releases the slot without solving);
   DELETE on a running job cancels its {!Budget}, which the engine
   polls between evaluations — the solve winds down to its incumbent,
   and [finish] records the job cancelled instead of done, discarding
   the result. *)

module Budget = Soctest_core.Budget
module Obs = Soctest_obs.Obs
module Clock = Soctest_obs.Clock

type outcome = { status : int; body : string }

type state = Queued | Running | Done of outcome | Cancelled

let state_name = function
  | Queued -> "queued"
  | Running -> "running"
  | Done _ -> "done"
  | Cancelled -> "cancelled"

type entry = {
  id : string;
  request_id : string;
  budget : Budget.t;
  submitted_at : float;  (* monotonic ms *)
  mutable state : state;
  mutable started_at : float option;
  mutable finished_at : float option;
  mutable cancel_requested : bool;
}

type t = {
  lock : Mutex.t;
  table : (string, entry) Hashtbl.t;
  order : string Queue.t;  (* submission order, the eviction scan order *)
  capacity : int;
  ttl_ms : float;
}

(* Job-state population gauges, labelled the {!Soctest_obs.Prom} way so
   they land as one Prometheus series per state. *)
let state_g name = Obs.gauge (Printf.sprintf "serve.jobs{state=%S}" name)
let queued_g = state_g "queued"
let running_g = state_g "running"
let done_g = state_g "done"
let cancelled_g = state_g "cancelled"

let gauge_of = function
  | Queued -> queued_g
  | Running -> running_g
  | Done _ -> done_g
  | Cancelled -> cancelled_g

let submitted_c = Obs.counter "serve.jobs_submitted"
let evicted_c = Obs.counter "serve.jobs_evicted"
let rejected_full_c = Obs.counter "serve.jobs_rejected_full"

let set_state e s =
  Obs.add_gauge (gauge_of e.state) (-1.);
  Obs.add_gauge (gauge_of s) 1.;
  e.state <- s

let default_capacity = 256
let default_ttl_ms = 300_000.

let create ?(capacity = default_capacity) ?(ttl_ms = default_ttl_ms) () =
  if capacity < 1 then invalid_arg "Jobs.create: capacity must be >= 1";
  if ttl_ms < 0. then invalid_arg "Jobs.create: negative ttl_ms";
  {
    lock = Mutex.create ();
    table = Hashtbl.create 64;
    order = Queue.create ();
    capacity;
    ttl_ms;
  }

let capacity t = t.capacity
let ttl_ms t = t.ttl_ms

(* ------------------------------------------------------------------ *)
(* internals (caller holds the lock) *)

let finished e =
  match e.state with Done _ | Cancelled -> true | Queued | Running -> false

let expired t now e =
  match e.finished_at with
  | Some at -> now -. at >= t.ttl_ms
  | None -> false

let drop t e =
  Obs.add_gauge (gauge_of e.state) (-1.);
  Obs.incr evicted_c;
  Hashtbl.remove t.table e.id

(* Rebuild [order] while dropping expired entries; [extra] additionally
   drops at most one not-yet-expired finished entry (capacity
   pressure: the oldest finished result makes room for a new job). *)
let sweep ?(extra = false) t =
  let now = Clock.now_ms () in
  let keep = Queue.create () in
  let extra_left = ref extra in
  Queue.iter
    (fun id ->
      match Hashtbl.find_opt t.table id with
      | None -> ()  (* already dropped on an earlier sweep *)
      | Some e ->
        if expired t now e then drop t e
        else if !extra_left && finished e then begin
          extra_left := false;
          drop t e
        end
        else Queue.push id keep)
    t.order;
  Queue.clear t.order;
  Queue.transfer keep t.order

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

(* ------------------------------------------------------------------ *)
(* lifecycle *)

let submit t ~id ~request_id ~budget =
  locked t @@ fun () ->
  sweep t;
  if Hashtbl.length t.table >= t.capacity then sweep ~extra:true t;
  if Hashtbl.length t.table >= t.capacity then begin
    Obs.incr rejected_full_c;
    Error `Full
  end
  else begin
    let e =
      {
        id;
        request_id;
        budget;
        submitted_at = Clock.now_ms ();
        state = Queued;
        started_at = None;
        finished_at = None;
        cancel_requested = false;
      }
    in
    Hashtbl.replace t.table id e;
    Queue.push id t.order;
    Obs.incr submitted_c;
    Obs.add_gauge queued_g 1.;
    Ok e
  end

let start t e =
  locked t @@ fun () ->
  match e.state with
  | Queued ->
    set_state e Running;
    e.started_at <- Some (Clock.now_ms ());
    true
  | Running | Done _ | Cancelled -> false

let finish t e outcome =
  locked t @@ fun () ->
  match e.state with
  | Running ->
    (* a cancel that landed mid-solve wins over the degraded result *)
    set_state e (if e.cancel_requested then Cancelled else Done outcome);
    e.finished_at <- Some (Clock.now_ms ())
  | Queued | Done _ | Cancelled -> ()

let cancel t id =
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table id with
  | None -> `Unknown
  | Some e -> (
    match e.state with
    | Done _ | Cancelled -> `Already_finished (state_name e.state)
    | Queued ->
      e.cancel_requested <- true;
      Budget.cancel e.budget;
      set_state e Cancelled;
      e.finished_at <- Some (Clock.now_ms ());
      `Cancelled
    | Running ->
      e.cancel_requested <- true;
      (* the engine polls the budget between evaluations; the solve
         winds down to its incumbent and [finish] records Cancelled *)
      Budget.cancel e.budget;
      `Cancelling)

(* ------------------------------------------------------------------ *)
(* introspection *)

type view = {
  v_id : string;
  v_request_id : string;
  v_state : string;
  v_outcome : outcome option;
  v_age_ms : float;
  v_wait_ms : float;  (* admission to solve start (or to now while queued) *)
  v_run_ms : float option;
}

let view_of now e =
  {
    v_id = e.id;
    v_request_id = e.request_id;
    v_state = state_name e.state;
    v_outcome = (match e.state with Done o -> Some o | _ -> None);
    v_age_ms = Float.max 0. (now -. e.submitted_at);
    v_wait_ms =
      Float.max 0.
        ((match e.started_at with
         | Some s -> s
         | None -> ( match e.finished_at with Some f -> f | None -> now))
        -. e.submitted_at);
    v_run_ms =
      (match (e.started_at, e.finished_at) with
      | Some s, Some f -> Some (Float.max 0. (f -. s))
      | Some s, None -> Some (Float.max 0. (now -. s))
      | None, _ -> None);
  }

let find t id =
  locked t @@ fun () ->
  sweep t;
  Option.map (view_of (Clock.now_ms ())) (Hashtbl.find_opt t.table id)

type stats = {
  s_queued : int;
  s_running : int;
  s_done : int;
  s_cancelled : int;
  s_retained : int;
  s_capacity : int;
}

let stats t =
  locked t @@ fun () ->
  sweep t;
  let s =
    Hashtbl.fold
      (fun _ e acc ->
        match e.state with
        | Queued -> { acc with s_queued = acc.s_queued + 1 }
        | Running -> { acc with s_running = acc.s_running + 1 }
        | Done _ -> { acc with s_done = acc.s_done + 1 }
        | Cancelled -> { acc with s_cancelled = acc.s_cancelled + 1 })
      t.table
      {
        s_queued = 0;
        s_running = 0;
        s_done = 0;
        s_cancelled = 0;
        s_retained = 0;
        s_capacity = t.capacity;
      }
  in
  { s with s_retained = Hashtbl.length t.table }
