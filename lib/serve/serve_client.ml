module Json = Soctest_obs.Json

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let fail fmt = Printf.ksprintf failwith fmt

let read_all fd =
  let buf = Bytes.create 8192 in
  let acc = Buffer.create 4096 in
  let rec go () =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> Buffer.contents acc
    | n ->
      Buffer.add_subbytes acc buf 0 n;
      go ()
    | exception Unix.Unix_error (EINTR, _, _) -> go ()
    | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
      fail "Serve_client: timed out reading response"
    | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
      Buffer.contents acc
  in
  go ()

let parse_response raw =
  match Http.find_header_end raw with
  | None -> fail "Serve_client: truncated response (no header terminator)"
  | Some split ->
    let section = String.sub raw 0 split in
    let body = String.sub raw split (String.length raw - split) in
    (match Http.header_lines section with
    | [] -> fail "Serve_client: empty response"
    | status_line :: header_rows ->
      let status =
        match String.split_on_char ' ' status_line with
        | version :: code :: _
          when String.length version >= 5
               && String.sub version 0 5 = "HTTP/" -> (
          match int_of_string_opt code with
          | Some c -> c
          | None -> fail "Serve_client: bad status code %S" code)
        | _ -> fail "Serve_client: bad status line %S" status_line
      in
      let split_header line =
        match String.index_opt line ':' with
        | None -> fail "Serve_client: malformed header %S" line
        | Some i ->
          ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
            String.trim
              (String.sub line (i + 1) (String.length line - i - 1)) )
      in
      let headers = List.map split_header header_rows in
      (* trust Content-Length when present; EOF delimits otherwise *)
      let body =
        match List.assoc_opt "content-length" headers with
        | Some v -> (
          match int_of_string_opt (String.trim v) with
          | Some n when n >= 0 && n <= String.length body ->
            String.sub body 0 n
          | _ -> body)
        | None -> body
      in
      { status; headers; body })

let request ~port ?(host = "127.0.0.1") ?meth ?body ?(headers = [])
    ?(timeout_ms = 30_000.) path =
  let meth =
    match (meth, body) with
    | Some m, _ -> String.uppercase_ascii m
    | None, Some _ -> "POST"
    | None, None -> "GET"
  in
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> fail "Serve_client: bad host %S" host
  in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      Unix.setsockopt_float fd SO_RCVTIMEO (timeout_ms /. 1000.);
      Unix.setsockopt_float fd SO_SNDTIMEO (timeout_ms /. 1000.);
      (try Unix.connect fd (ADDR_INET (addr, port))
       with Unix.Unix_error (e, _, _) ->
         fail "Serve_client: connect to %s:%d failed: %s" host port
           (Unix.error_message e));
      let payload = Option.value body ~default:"" in
      let extra =
        String.concat ""
          (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
      in
      let req =
        Printf.sprintf
          "%s %s HTTP/1.1\r\nHost: %s:%d\r\nContent-Type: \
           application/json\r\nContent-Length: %d\r\n%sConnection: \
           close\r\n\r\n%s"
          meth path host port (String.length payload) extra payload
      in
      let n = String.length req in
      let rec push off =
        if off < n then
          match Unix.write_substring fd req off (n - off) with
          | written -> push (off + written)
          | exception Unix.Unix_error (EINTR, _, _) -> push off
      in
      (try push 0
       with Unix.Unix_error (e, _, _) ->
         fail "Serve_client: write failed: %s" (Unix.error_message e));
      parse_response (read_all fd))

let get ~port path = request ~port path
let post ~port ~body path = request ~port ~body path

let json_body r =
  match Json.parse r.body with
  | Ok v -> v
  | Error msg -> fail "Serve_client: response is not JSON: %s" msg
