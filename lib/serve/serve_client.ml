module Json = Soctest_obs.Json

type response = {
  status : int;
  headers : (string * string) list;
  body : string;
}

type error =
  | Timeout
  | Http of int * string
  | Decode of string
  | Conn of exn

exception Error of error

let error_message = function
  | Timeout -> "timed out"
  | Http (status, body) ->
    let body =
      if String.length body > 200 then String.sub body 0 200 ^ "..." else body
    in
    Printf.sprintf "unexpected HTTP %d: %s" status body
  | Decode msg -> "malformed response: " ^ msg
  | Conn exn -> "connection failed: " ^ Printexc.to_string exn

let () =
  Printexc.register_printer (function
    | Error e -> Some ("Serve_client: " ^ error_message e)
    | _ -> None)

let err e = raise (Error e)
let decode_err fmt = Printf.ksprintf (fun m -> err (Decode m)) fmt

(* ------------------------------------------------------------------ *)
(* the reusable client *)

type t = {
  host : string;
  port : int;
  addr : Unix.inet_addr;
  timeout_ms : float;
  mutable sock : Unix.file_descr option;  (* the kept-alive connection *)
  mutable sock_used : bool;  (* a response has been read on [sock] *)
  mutable residual : string;  (* bytes read past the previous response *)
}

let connect ?(host = "127.0.0.1") ?(timeout_ms = 30_000.) ~port () =
  let addr =
    try Unix.inet_addr_of_string host
    with Failure _ -> decode_err "bad host %S" host
  in
  { host; port; addr; timeout_ms; sock = None; sock_used = false;
    residual = "" }

let drop_sock t =
  (match t.sock with
  | Some fd -> ( try Unix.close fd with Unix.Unix_error _ -> ())
  | None -> ());
  t.sock <- None;
  t.sock_used <- false;
  t.residual <- ""

let close = drop_sock

(* [false]: the socket was freshly connected for this exchange —
   a failure on it is a real error, not a stale kept-alive socket. *)
let ensure_sock t ~timeout_ms =
  match t.sock with
  | Some fd -> (fd, t.sock_used)
  | None ->
    let fd = Unix.socket PF_INET SOCK_STREAM 0 in
    (try
       Unix.setsockopt_float fd SO_RCVTIMEO (timeout_ms /. 1000.);
       Unix.setsockopt_float fd SO_SNDTIMEO (timeout_ms /. 1000.);
       (* request/response over a kept-alive socket must not trip the
          Nagle + delayed-ACK stall *)
       Unix.setsockopt fd TCP_NODELAY true;
       Unix.connect fd (ADDR_INET (t.addr, t.port))
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       err (Conn e));
    t.sock <- Some fd;
    t.sock_used <- false;
    (fd, false)

let request_string t ~meth ~path ~body ~headers =
  let payload = Option.value body ~default:"" in
  let extra =
    String.concat ""
      (List.map (fun (k, v) -> Printf.sprintf "%s: %s\r\n" k v) headers)
  in
  Printf.sprintf
    "%s %s HTTP/1.1\r\nHost: %s:%d\r\nContent-Type: \
     application/json\r\nContent-Length: %d\r\n%sConnection: \
     keep-alive\r\n\r\n%s"
    meth path t.host t.port (String.length payload) extra payload

let write_all fd s =
  let n = String.length s in
  let rec push off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> push (off + written)
      | exception Unix.Unix_error (EINTR, _, _) -> push off
  in
  try push 0 with
  | Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) -> err Timeout
  | Unix.Unix_error _ as e -> err (Conn e)

(* Read one Content-Length-framed response off the socket, starting
   from (and refilling) the client's residual buffer — the keep-alive
   framing mirror of {!Http.read_request}. *)
let read_response t fd =
  let buf = Bytes.create 8192 in
  let acc = Buffer.create 4096 in
  Buffer.add_string acc t.residual;
  t.residual <- "";
  let eof = ref false in
  let fill_once () =
    if !eof then decode_err "truncated response"
    else
      match Unix.read fd buf 0 (Bytes.length buf) with
      | 0 -> eof := true
      | n -> Buffer.add_subbytes acc buf 0 n
      | exception Unix.Unix_error (EINTR, _, _) -> ()
      | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
        err Timeout
      | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
        eof := true
      | exception (Unix.Unix_error _ as e) -> err (Conn e)
  in
  let rec head () =
    match Http.find_header_end (Buffer.contents acc) with
    | Some split -> split
    | None ->
      if !eof then
        if Buffer.length acc = 0 then
          (* nothing at all: the peer closed the kept-alive socket *)
          err (Conn End_of_file)
        else decode_err "truncated response (no header terminator)"
      else begin
        fill_once ();
        head ()
      end
  in
  let split = head () in
  let section = String.sub (Buffer.contents acc) 0 split in
  let status, headers =
    match Http.header_lines section with
    | [] -> decode_err "empty response"
    | status_line :: header_rows ->
      let status =
        match String.split_on_char ' ' status_line with
        | version :: code :: _
          when String.length version >= 5 && String.sub version 0 5 = "HTTP/"
          -> (
          match int_of_string_opt code with
          | Some c -> c
          | None -> decode_err "bad status code %S" code)
        | _ -> decode_err "bad status line %S" status_line
      in
      let split_header line =
        match String.index_opt line ':' with
        | None -> decode_err "malformed header %S" line
        | Some i ->
          ( String.lowercase_ascii (String.trim (String.sub line 0 i)),
            String.trim (String.sub line (i + 1) (String.length line - i - 1))
          )
      in
      (status, List.map split_header header_rows)
  in
  let body =
    match List.assoc_opt "content-length" headers with
    | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some n when n >= 0 ->
        let wanted = split + n in
        while Buffer.length acc < wanted do
          fill_once ()
        done;
        let all = Buffer.contents acc in
        t.residual <- String.sub all wanted (String.length all - wanted);
        String.sub all split n
      | _ -> decode_err "bad content-length %S" v)
    | None ->
      (* no framing: EOF delimits (the server always sends a length;
         this is for non-conformant peers) *)
      while not !eof do
        fill_once ()
      done;
      let all = Buffer.contents acc in
      String.sub all split (String.length all - split)
  in
  let keep =
    match List.assoc_opt "connection" headers with
    | Some v -> String.lowercase_ascii v <> "close"
    | None -> true
  in
  if not keep then drop_sock t else t.sock_used <- true;
  { status; headers; body }

exception Retry  (* stale kept-alive socket: reconnect and try again *)

(* One exchange with transparent reuse: a kept-alive socket the server
   quietly closed (idle timeout, request budget) fails the first
   read — retry once on a fresh connection. A failure on a fresh
   connection is never retried: the server really is unreachable (and
   a request that reached a live server gets an answer, not a dropped
   socket, so the retry cannot double-execute against a healthy
   server). *)
let call t ?meth ?body ?(headers = []) ?timeout_ms path =
  let meth =
    match (meth, body) with
    | Some m, _ -> String.uppercase_ascii m
    | None, Some _ -> "POST"
    | None, None -> "GET"
  in
  let timeout_ms = Option.value timeout_ms ~default:t.timeout_ms in
  let exchange () =
    let fd, reused = ensure_sock t ~timeout_ms in
    Unix.setsockopt_float fd SO_RCVTIMEO (timeout_ms /. 1000.);
    Unix.setsockopt_float fd SO_SNDTIMEO (timeout_ms /. 1000.);
    try write_all fd (request_string t ~meth ~path ~body ~headers);
        read_response t fd
    with Error _ as e ->
      drop_sock t;
      if reused then raise Retry else raise e
  in
  try exchange () with Retry -> exchange ()

(* Pipelined burst: write every request in one send, then collect the
   responses in order off the same socket. No mid-burst retry — a
   failure after the first response would re-execute earlier requests;
   a stale kept-alive socket (nothing read yet) does reconnect once. *)
let pipeline t ?timeout_ms specs =
  let timeout_ms = Option.value timeout_ms ~default:t.timeout_ms in
  let exchange () =
    let fd, reused = ensure_sock t ~timeout_ms in
    Unix.setsockopt_float fd SO_RCVTIMEO (timeout_ms /. 1000.);
    Unix.setsockopt_float fd SO_SNDTIMEO (timeout_ms /. 1000.);
    let batch =
      String.concat ""
        (List.map
           (fun (meth, path, body) ->
             request_string t ~meth ~path ~body ~headers:[])
           specs)
    in
    let read_any = ref false in
    try
      write_all fd batch;
      List.map
        (fun _ ->
          let r = read_response t fd in
          read_any := true;
          r)
        specs
    with Error _ as e ->
      drop_sock t;
      if reused && not !read_any then raise Retry else raise e
  in
  try exchange () with Retry -> exchange ()

(* ------------------------------------------------------------------ *)
(* one-shot convenience (fresh connection per call, like serve v1) *)

let request ~port ?host ?meth ?body ?headers ?timeout_ms path =
  let t = connect ?host ?timeout_ms ~port () in
  Fun.protect
    ~finally:(fun () -> close t)
    (fun () -> call t ?meth ?body ?headers path)

let get ~port path = request ~port path
let post ~port ~body path = request ~port ~body path

let json_body r =
  match Json.parse r.body with
  | Ok v -> v
  | Error msg -> decode_err "response is not JSON: %s" msg

(* ------------------------------------------------------------------ *)
(* async job helpers *)

let job_state_of_body body =
  match Json.parse body with
  | Ok (Json.Obj _ as obj) -> (
    match Json.member "state" obj with
    | Some (Json.String s) -> Some s
    | _ -> None)
  | _ -> None

let solve_async t ~body =
  let r = call t ~meth:"POST" ~body "/v1/solve?mode=async" in
  if r.status <> 202 then err (Http (r.status, r.body));
  match Json.parse r.body with
  | Ok (Json.Obj _ as obj) -> (
    match Json.member "job_id" obj with
    | Some (Json.String id) -> id
    | _ -> decode_err "202 body without job_id: %s" r.body)
  | _ -> decode_err "202 body is not JSON: %s" r.body

let job_status t id = call t ("/v1/jobs/" ^ id)
let cancel_job t id = call t ~meth:"DELETE" ("/v1/jobs/" ^ id)

let await_job ?(poll_ms = 20.) ?(timeout_ms = 30_000.) t id =
  let deadline = Unix.gettimeofday () +. (timeout_ms /. 1000.) in
  let rec poll () =
    let r = job_status t id in
    match job_state_of_body r.body with
    | Some ("queued" | "running") when r.status = 200 ->
      if Unix.gettimeofday () > deadline then err Timeout;
      Unix.sleepf (poll_ms /. 1000.);
      poll ()
    | _ -> r  (* the replayed result, a cancelled doc, or a 404 *)
  in
  poll ()
