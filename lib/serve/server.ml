module Engine = Soctest_engine.Engine
module Flow = Soctest_engine.Flow
module Budget = Soctest_core.Budget
module Optimizer = Soctest_core.Optimizer
module Constraint_def = Soctest_constraints.Constraint_def
module Soc_def = Soctest_soc.Soc_def
module Audit = Soctest_check.Audit
module Pool = Soctest_portfolio.Pool
module Obs = Soctest_obs.Obs
module Json = Soctest_obs.Json
module Clock = Soctest_obs.Clock
module Log = Soctest_obs.Log
module Flight = Soctest_obs.Flight
module Prom = Soctest_obs.Prom

type config = {
  port : int;
  workers : int;
  queue_depth : int;
  max_body : int;
  read_timeout_ms : float;
  slow_ms : float option;
  flight_capacity : int;
}

let config ?(port = 8080)
    ?(workers = max 1 (Domain.recommended_domain_count () - 1))
    ?(queue_depth = 64) ?(max_body = Http.default_max_body)
    ?(read_timeout_ms = 10_000.) ?slow_ms ?(flight_capacity = 256) () =
  if port < 0 then invalid_arg "Server.config: negative port";
  if workers < 1 then invalid_arg "Server.config: workers must be >= 1";
  if queue_depth < 1 then
    invalid_arg "Server.config: queue_depth must be >= 1";
  if max_body < 1 then invalid_arg "Server.config: max_body must be >= 1";
  if read_timeout_ms < 0. then
    invalid_arg "Server.config: negative read_timeout_ms";
  (match slow_ms with
  | Some ms when ms < 0. -> invalid_arg "Server.config: negative slow_ms"
  | _ -> ());
  if flight_capacity < 1 then
    invalid_arg "Server.config: flight_capacity must be >= 1";
  { port; workers; queue_depth; max_body; read_timeout_ms; slow_ms;
    flight_capacity }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  engine_ : Engine.t;
  pool : Pool.t;
  inflight : int Atomic.t;  (* admitted (queued or running) jobs *)
  stopping : bool Atomic.t;
  started_at : float;  (* monotonic ms *)
  flight : Flight.t;
}

(* Request-lifecycle metrics. [create] turns on metrics-only Obs
   recording itself, so these are live in every embedding, not just
   under [soctest serve]. *)
let accepted_c = Obs.counter "serve.accepted"
let rejected_c = Obs.counter "serve.rejected"
let bad_request_c = Obs.counter "serve.bad_request"
let completed_c = Obs.counter "serve.completed"
let deadline_c = Obs.counter "serve.deadline_exceeded"
let inflight_g = Obs.gauge "serve.inflight"
let latency_h = Obs.histogram "serve.latency_ms"

(* Per-endpoint/per-status series: labels ride inside the registry name
   (the {!Prom} rendering convention), so the registry stays a flat
   table and these land as labelled Prometheus series. *)
let requests_c ~endpoint ~status =
  Obs.counter
    (Printf.sprintf "serve.requests{endpoint=%S,status=%S}" endpoint
       (string_of_int status))

let request_ms_h ~endpoint =
  Obs.histogram (Printf.sprintf "serve.request_ms{endpoint=%S}" endpoint)

let create ?engine cfg =
  (* metrics-only: embedding [Server] must not silently record nothing,
     and must not clobber an Obs session a host already runs (tests
     enable full recording before creating servers) *)
  if not (Obs.enabled ()) then Obs.enable ~events:false ();
  let engine_ =
    match engine with Some e -> e | None -> Engine.create ()
  in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd SO_REUSEADDR true;
     Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, cfg.port));
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  {
    cfg;
    listen_fd = fd;
    bound_port;
    engine_;
    pool = Pool.create ~jobs:cfg.workers;
    inflight = Atomic.make 0;
    stopping = Atomic.make false;
    started_at = Clock.now_ms ();
    flight = Flight.create ~capacity:cfg.flight_capacity;
  }

let port t = t.bound_port
let engine t = t.engine_
let flight_recorder t = t.flight
let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()
let json_headers = [ ("Content-Type", "application/json") ]

(* ------------------------------------------------------------------ *)
(* Per-request context and the uniform completion path. Handlers build
   a [reply]; [complete] writes it (echoing the request id), observes
   the per-endpoint metrics, publishes the flight record and dumps it
   through {!Log} on 5xx or a slow request — one choke point instead of
   per-handler bookkeeping. *)

type reply = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let json_reply ?(headers = []) ~status body =
  { status; headers = headers @ json_headers; body }

type ctx = {
  id : string;
  endpoint : string;
  accepted_at : float;  (* monotonic ms: request parsed, context minted *)
  mutable queued_at : float;  (* monotonic ms at admission *)
  mutable phases : (string * float) list;  (* reverse accumulation *)
  mutable tier : string;
  mutable store_rejected : bool;
  mutable healed : bool;
}

(* An inbound x-request-id is echoed when it is a sane header token;
   anything else (or nothing) gets a fresh ULID. *)
let acceptable_inbound_id s =
  let n = String.length s in
  n > 0 && n <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       s

let make_ctx ?req ~endpoint () =
  let id =
    match Option.bind req (fun r -> Http.header r "x-request-id") with
    | Some inbound when acceptable_inbound_id inbound -> inbound
    | _ -> Ulid.gen ()
  in
  {
    id;
    endpoint;
    accepted_at = Clock.now_ms ();
    queued_at = 0.;
    phases = [];
    tier = "-";
    store_rejected = false;
    healed = false;
  }

let add_phase ctx name ms = ctx.phases <- (name, ms) :: ctx.phases

let phase ctx name f =
  let t0 = Clock.now_ms () in
  let r = f () in
  add_phase ctx name (Float.max 0. (Clock.now_ms () -. t0));
  r

(* Merge repeated phase names (a P3 sweep attributes engine phases once
   per width) and restore accumulation order. *)
let merged_phases ctx =
  List.fold_left
    (fun acc (name, ms) ->
      match List.assoc_opt name acc with
      | Some _ ->
        List.map (fun (n, v) -> if n = name then (n, v +. ms) else (n, v)) acc
      | None -> acc @ [ (name, ms) ])
    [] (List.rev ctx.phases)

let complete t ctx fd (reply : reply) =
  let w0 = Clock.now_ms () in
  Http.write_response
    ~headers:(("x-request-id", ctx.id) :: reply.headers)
    fd ~status:reply.status reply.body;
  let now = Clock.now_ms () in
  add_phase ctx "write" (Float.max 0. (now -. w0));
  let total = Float.max 0. (now -. ctx.accepted_at) in
  Obs.observe latency_h total;
  Obs.observe (request_ms_h ~endpoint:ctx.endpoint) total;
  Obs.incr (requests_c ~endpoint:ctx.endpoint ~status:reply.status);
  let slow =
    match t.cfg.slow_ms with Some ms -> total > ms | None -> false
  in
  let record =
    {
      Flight.id = ctx.id;
      endpoint = ctx.endpoint;
      status = reply.status;
      total_ms = total;
      phases = merged_phases ctx;
      tier = ctx.tier;
      store_rejected = ctx.store_rejected;
      healed = ctx.healed;
      slow;
    }
  in
  Flight.record t.flight record;
  (* inline GETs complete outside the worker's [with_request]; re-assert
     the ambient id so every line carries it exactly once *)
  Obs.with_request ctx.id @@ fun () ->
  Log.info "serve.request"
    ~fields:
      [
        ("endpoint", Json.String ctx.endpoint);
        ("status", Json.Int reply.status);
        ("total_ms", Json.Float total);
        ("tier", Json.String ctx.tier);
      ];
  if reply.status >= 500 then
    Log.error "serve.error_response"
      ~fields:[ ("record", Flight.to_json record) ]
  else if slow then
    Log.warn "serve.slow" ~fields:[ ("record", Flight.to_json record) ]

(* answer inline and hang up — the non-admitted paths *)
let finish t ctx fd reply =
  complete t ctx fd reply;
  close_quietly fd

(* ------------------------------------------------------------------ *)
(* GET endpoints — answered in the accept loop, never queued *)

let uptime_ms t = Float.max 0. (Clock.now_ms () -. t.started_at)

let healthz t =
  Json.to_string
    (Json.Obj
       [
         ( "status",
           Json.String (if Atomic.get t.stopping then "draining" else "ok")
         );
         ("uptime_ms", Json.Float (uptime_ms t));
         ("inflight", Json.Int (Atomic.get t.inflight));
         ("workers", Json.Int t.cfg.workers);
         ("queue_depth", Json.Int t.cfg.queue_depth);
       ])

let metrics t =
  let m = Obs.metrics () in
  let cache_obj (hits, misses) =
    Json.Obj [ ("hits", Json.Int hits); ("misses", Json.Int misses) ]
  in
  let store_obj =
    (* per-tier counters: numeric fields are always present so clients
       (bench-serve) can diff them without probing for the store *)
    let s = Engine.store_stats t.engine_ in
    let static =
      [
        ("hits", Json.Int s.Engine.hits);
        ("misses", Json.Int s.Engine.misses);
        ("audit_rejects", Json.Int s.Engine.audit_rejects);
        ("write_errors", Json.Int s.Engine.write_errors);
      ]
    in
    match Engine.store t.engine_ with
    | None -> Json.Obj (("enabled", Json.Bool false) :: static)
    | Some store ->
      let fs = Soctest_store.Store.stats store in
      Json.Obj
        (("enabled", Json.Bool true)
        :: static
        @ [
            ("path", Json.String (Soctest_store.Store.path store));
            ("entries", Json.Int fs.Soctest_store.Store.entries);
            ("file_bytes", Json.Int fs.Soctest_store.Store.file_bytes);
            ("appends", Json.Int fs.Soctest_store.Store.appends);
          ])
  in
  Json.to_string
    (Json.Obj
       [
         ("uptime_ms", Json.Float (uptime_ms t));
         ("inflight", Json.Int (Atomic.get t.inflight));
         ( "engine",
           (* counted inside the engine, visible even when Obs is off *)
           Json.Obj
             [
               ("pareto", cache_obj (Engine.pareto_cache_stats t.engine_));
               ("eval", cache_obj (Engine.eval_cache_stats t.engine_));
               ("store", store_obj);
             ] );
         ( "counters",
           Json.Obj
             (List.map (fun (k, v) -> (k, Json.Int v)) m.Obs.counters) );
         ( "gauges",
           Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) m.Obs.gauges)
         );
         ( "histograms",
           Json.Obj
             (List.map
                (fun (k, buckets) ->
                  ( k,
                    Json.List
                      (List.map
                         (fun (edge, count) ->
                           (* the overflow edge is infinity -> null *)
                           Json.List [ Json.Float edge; Json.Int count ])
                         buckets) ))
                m.Obs.histograms) );
       ])

let debug_requests t query =
  let limit =
    match List.assoc_opt "limit" query with
    | Some v -> int_of_string_opt v
    | None -> None
  in
  Json.to_string
    (Json.Obj
       [
         ( "requests",
           Json.List (List.map Flight.to_json (Flight.recent ?limit t.flight))
         );
       ])

(* ------------------------------------------------------------------ *)
(* solve / check execution — runs on a pool worker *)

let constraints_of_solve (req : Protocol.solve_request) =
  match req.problem with
  | Protocol.P1 ->
    Constraint_def.empty ~core_count:(Soc_def.core_count req.soc)
  | Protocol.P2 | Protocol.P3 ->
    let max_preemptions =
      match req.preempt with
      | Some limit -> Flow.preemption_budget req.soc ~limit
      | None -> []
    in
    Constraint_def.of_soc req.soc ?power_limit:req.power_limit
      ~max_preemptions ()

let grid_of = function
  | Protocol.Point -> Engine.point_grid ()
  | Protocol.Grid -> Engine.default_grid

let problem_name = function
  | Protocol.P1 -> "p1"
  | Protocol.P2 -> "p2"
  | Protocol.P3 -> "p3"

let status_name = function
  | Engine.Complete -> "complete"
  | Engine.Deadline -> "deadline"

(* Attribute an engine solve's elapsed time to the flight-record
   phases: disk probe+audit and optimizer time are measured inside the
   engine; the remainder is memory-cache probing and bookkeeping. *)
let note_engine_phases ctx (s : Engine.stats) =
  let probe = s.Engine.store_probe_ms in
  let solve = s.Engine.eval_solve_ms in
  add_phase ctx "cache_probe"
    (Float.max 0. (s.Engine.elapsed_ms -. probe -. solve));
  add_phase ctx "disk_audit" probe;
  add_phase ctx "solve" solve

let note_tier ctx (s : Engine.stats) =
  ctx.tier <-
    (if s.Engine.eval_computed > 0 then "solve"
     else if s.Engine.eval_from_store > 0 then "store"
     else "memory")

(* Store-audit outcome flags, from the engine's tier counters around
   the solve. [healed] means a rejected entry degraded to a fresh solve
   whose write-through then replaced it. Deltas are per-engine, so a
   concurrent worker's reject can blur attribution — good enough for a
   diagnostic flag. *)
let with_store_flags t ctx f =
  let s0 = Engine.store_stats t.engine_ in
  let r = f () in
  let s1 = Engine.store_stats t.engine_ in
  if s1.Engine.audit_rejects > s0.Engine.audit_rejects then begin
    ctx.store_rejected <- true;
    ctx.healed <- s1.Engine.write_errors = s0.Engine.write_errors
  end;
  r

let handle_solve t ctx (req : Protocol.solve_request) ~budget =
  (* test/bench aid: hold this worker to make admission control
     deterministic under test *)
  if req.stall_ms > 0 then
    phase ctx "stall" (fun () ->
        Unix.sleepf (float_of_int req.stall_ms /. 1000.));
  let constraints = phase ctx "prep" (fun () -> constraints_of_solve req) in
  let solve ~tam_width =
    Engine.solve t.engine_
      (Engine.request req.soc ~tam_width ~constraints ~wmax:req.wmax
         ~grid:(grid_of req.strategy) ~budget ())
  in
  let common =
    [
      ("soc", Json.String req.soc_source);
      ("width", Json.Int req.tam_width);
      ("problem", Json.String (problem_name req.problem));
    ]
  in
  match req.problem with
  | Protocol.P1 | Protocol.P2 ->
    let outcome =
      with_store_flags t ctx (fun () -> solve ~tam_width:req.tam_width)
    in
    note_engine_phases ctx outcome.Engine.stats;
    note_tier ctx outcome.Engine.stats;
    (match outcome.Engine.status with
    | Engine.Deadline -> Obs.incr deadline_c
    | Engine.Complete -> ());
    (* no unaudited schedule leaves the service *)
    let audit =
      phase ctx "audit" (fun () ->
          Audit.run req.soc
            (Engine.audit_spec t.engine_ ~wmax:req.wmax
               ~expect_tam_width:req.tam_width constraints)
            outcome.Engine.result.Optimizer.schedule)
    in
    if Audit.ok audit then
      json_reply ~status:200
        (phase ctx "render" (fun () ->
             Json.to_string
               (Json.Obj
                  (common
                  @ [
                      ( "result",
                        Protocol.json_of_outcome ~soc:req.soc outcome );
                      ("audit", Protocol.json_of_report audit);
                    ]))))
    else
      (* a dirty schedule out of the solver is a server bug, not a
         client error *)
      json_reply ~status:500
        (Protocol.error_body
           ~detail:(Json.Obj [ ("audit", Protocol.json_of_report audit) ])
           "solver produced a schedule that failed its audit")
  | Protocol.P3 ->
    let max_width = Option.value req.max_width ~default:req.tam_width in
    let widths = List.init max_width (fun i -> i + 1) in
    let outcomes =
      with_store_flags t ctx (fun () ->
          Engine.solve_many t.engine_
            (List.map
               (fun w ->
                 Engine.request req.soc ~tam_width:w ~constraints
                   ~wmax:req.wmax ~grid:(grid_of req.strategy) ~budget ())
               widths))
    in
    List.iter (fun (o : Engine.outcome) ->
        note_engine_phases ctx o.Engine.stats)
      outcomes;
    (* the sweep's tier is its most expensive constituent *)
    let summed =
      List.fold_left
        (fun (c, s) (o : Engine.outcome) ->
          ( c + o.Engine.stats.Engine.eval_computed,
            s + o.Engine.stats.Engine.eval_from_store ))
        (0, 0) outcomes
    in
    (ctx.tier <-
       (match summed with
       | c, _ when c > 0 -> "solve"
       | _, s when s > 0 -> "store"
       | _ -> "memory"));
    if List.exists (fun o -> o.Engine.status = Engine.Deadline) outcomes
    then Obs.incr deadline_c;
    let points =
      List.map2
        (fun w (o : Engine.outcome) ->
          let time = o.Engine.result.Optimizer.testing_time in
          Json.Obj
            [
              ("width", Json.Int w);
              ("time", Json.Int time);
              ("volume", Json.Int (w * time));
              ("status", Json.String (status_name o.Engine.status));
            ])
        widths outcomes
    in
    let evaluations =
      List.fold_left (fun n o -> n + o.Engine.evaluations) 0 outcomes
    in
    json_reply ~status:200
      (phase ctx "render" (fun () ->
           Json.to_string
             (Json.Obj
                (common
                @ [
                    ("points", Json.List points);
                    ("evaluations", Json.Int evaluations);
                  ]))))

let handle_check t ctx (req : Protocol.check_request) =
  let constraints =
    phase ctx "prep" (fun () ->
        let max_preemptions =
          match req.preempt with
          | Some limit when limit >= 0 ->
            Flow.preemption_budget req.soc ~limit
          | _ -> []
        in
        Constraint_def.of_soc req.soc ?power_limit:req.power_limit
          ~max_preemptions ())
  in
  let spec =
    Engine.audit_spec t.engine_ ~wmax:req.wmax
      ~require_complete:(not req.partial) constraints
  in
  let report = phase ctx "audit" (fun () -> Audit.run req.soc spec req.schedule) in
  (* violations are the answer here, not an error *)
  json_reply ~status:200
    (phase ctx "render" (fun () ->
         Json.to_string
           (Json.Obj
              [
                ("soc", Json.String req.soc_source);
                ("audit", Protocol.json_of_report report);
              ])))

(* ------------------------------------------------------------------ *)
(* admission control *)

let try_admit t =
  let rec go () =
    let n = Atomic.get t.inflight in
    if n >= t.cfg.queue_depth then false
    else if Atomic.compare_and_set t.inflight n (n + 1) then true
    else go ()
  in
  go ()

let note_inflight t =
  Obs.set_gauge inflight_g (float_of_int (Atomic.get t.inflight))

(* Wrap an admitted job: deliver some answer no matter what, then
   release the fd and the admission slot. The worker domain carries the
   request id for the whole job, so engine spans and store log lines
   attribute to it. *)
let job t fd ctx run () =
  Fun.protect
    ~finally:(fun () ->
      close_quietly fd;
      Atomic.decr t.inflight;
      note_inflight t)
    (fun () ->
      Obs.with_request ctx.id @@ fun () ->
      add_phase ctx "queue"
        (Float.max 0. (Clock.now_ms () -. ctx.queued_at));
      let reply =
        try run ()
        with
        | Optimizer.Infeasible msg ->
          json_reply ~status:422
            (Protocol.error_body ("infeasible: " ^ msg))
        | exn ->
          json_reply ~status:500
            (Protocol.error_body (Printexc.to_string exn))
      in
      Obs.incr completed_c;
      complete t ctx fd reply)

let admit t fd ctx ?budget_ms run =
  if not (try_admit t) then begin
    Obs.incr rejected_c;
    finish t ctx fd
      (json_reply ~status:429
         ~headers:[ ("Retry-After", "1") ]
         (Protocol.error_body "queue full, retry later"))
  end
  else begin
    Obs.incr accepted_c;
    note_inflight t;
    (* created at admission: queue wait burns the caller's budget *)
    let budget =
      match budget_ms with
      | None -> Budget.unlimited
      | Some ms -> Budget.create ~deadline_ms:ms ()
    in
    ctx.queued_at <- Clock.now_ms ();
    match Pool.submit t.pool (job t fd ctx (fun () -> run ~budget)) with
    | () -> ()
    | exception Invalid_argument _ ->
      (* raced with shutdown *)
      Atomic.decr t.inflight;
      note_inflight t;
      finish t ctx fd
        (json_reply ~status:503
           (Protocol.error_body "server shutting down"))
  end

(* ------------------------------------------------------------------ *)
(* routing and the accept loop *)

let prom_headers = [ ("Content-Type", "text/plain; version=0.0.4") ]

let route t fd (req : Http.request) =
  let path, query = Http.split_target req.Http.target in
  let ctx = make_ctx ~req ~endpoint:path () in
  match (req.Http.meth, path) with
  | "GET", "/healthz" ->
    finish t ctx fd
      (phase ctx "render" (fun () -> json_reply ~status:200 (healthz t)))
  | "GET", "/v1/metrics" ->
    finish t ctx fd
      (phase ctx "render" (fun () -> json_reply ~status:200 (metrics t)))
  | "GET", "/metrics" ->
    finish t ctx fd
      (phase ctx "render" (fun () ->
           { status = 200; headers = prom_headers; body = Prom.render () }))
  | "GET", "/v1/debug/requests" ->
    finish t ctx fd
      (phase ctx "render" (fun () ->
           json_reply ~status:200 (debug_requests t query)))
  | "POST", "/v1/solve" -> (
    match Protocol.solve_request_of_body req.Http.body with
    | Error msg ->
      Obs.incr bad_request_c;
      finish t ctx fd (json_reply ~status:400 (Protocol.error_body msg))
    | Ok sreq ->
      admit t fd ctx ?budget_ms:sreq.Protocol.budget_ms (fun ~budget ->
          handle_solve t ctx sreq ~budget))
  | "POST", "/v1/check" -> (
    match Protocol.check_request_of_body req.Http.body with
    | Error msg ->
      Obs.incr bad_request_c;
      finish t ctx fd (json_reply ~status:400 (Protocol.error_body msg))
    | Ok creq ->
      admit t fd ctx (fun ~budget:_ -> handle_check t ctx creq))
  | (("GET" | "POST") as meth), target ->
    Obs.incr bad_request_c;
    finish t ctx fd
      (json_reply ~status:404
         (Protocol.error_body
            (Printf.sprintf "no such endpoint: %s %s" meth target)))
  | meth, _ ->
    Obs.incr bad_request_c;
    finish t ctx fd
      (json_reply ~status:405
         (Protocol.error_body (Printf.sprintf "method %s not supported" meth)))

let handle_connection t fd =
  Unix.setsockopt_float fd SO_RCVTIMEO (t.cfg.read_timeout_ms /. 1000.);
  match Http.read_request ~max_body:t.cfg.max_body fd with
  | Error (Http.Bad_request msg) ->
    Obs.incr bad_request_c;
    finish t (make_ctx ~endpoint:"-" ()) fd
      (json_reply ~status:400 (Protocol.error_body msg))
  | Error (Http.Payload_too_large { limit }) ->
    Obs.incr bad_request_c;
    finish t (make_ctx ~endpoint:"-" ()) fd
      (json_reply ~status:413
         (Protocol.error_body
            (Printf.sprintf "request body exceeds %d bytes" limit)))
  | Error Http.Timeout ->
    Obs.incr bad_request_c;
    finish t (make_ctx ~endpoint:"-" ()) fd
      (json_reply ~status:408
         (Protocol.error_body "timed out reading request"))
  | Error Http.Closed -> close_quietly fd
  | Ok req -> route t fd req

let run t =
  Log.info "serve.started"
    ~fields:
      [
        ("port", Json.Int t.bound_port);
        ("workers", Json.Int t.cfg.workers);
        ("queue_depth", Json.Int t.cfg.queue_depth);
      ];
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept t.listen_fd with
      | fd, _ ->
        (try handle_connection t fd
         with exn ->
           (* defensive: no single connection may kill the loop *)
           (try
              Http.write_response
                ~headers:(("x-request-id", Ulid.gen ()) :: json_headers)
                fd ~status:500
                (Protocol.error_body (Printexc.to_string exn))
            with _ -> ());
           close_quietly fd);
        loop ()
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (ECONNABORTED, _, _) -> loop ()
      | exception Unix.Unix_error ((EINVAL | EBADF), _, _)
        when Atomic.get t.stopping ->
        (* [stop] shut the listener down under us — the normal exit *)
        ()
  in
  loop ();
  (* drain: every admitted job is answered before we return *)
  Pool.shutdown t.pool;
  close_quietly t.listen_fd;
  Log.info "serve.stopped"
    ~fields:[ ("uptime_ms", Json.Float (uptime_ms t)) ]

let stop t =
  if not (Atomic.exchange t.stopping true) then
    (* wakes a blocked [accept] (EINVAL on Linux) — closing the fd alone
       does not reliably do that *)
    try Unix.shutdown t.listen_fd SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()
