module Engine = Soctest_engine.Engine
module Flow = Soctest_engine.Flow
module Budget = Soctest_core.Budget
module Optimizer = Soctest_core.Optimizer
module Constraint_def = Soctest_constraints.Constraint_def
module Soc_def = Soctest_soc.Soc_def
module Audit = Soctest_check.Audit
module Pool = Soctest_portfolio.Pool
module Obs = Soctest_obs.Obs
module Json = Soctest_obs.Json

type config = {
  port : int;
  workers : int;
  queue_depth : int;
  max_body : int;
  read_timeout_ms : float;
}

let config ?(port = 8080)
    ?(workers = max 1 (Domain.recommended_domain_count () - 1))
    ?(queue_depth = 64) ?(max_body = Http.default_max_body)
    ?(read_timeout_ms = 10_000.) () =
  if port < 0 then invalid_arg "Server.config: negative port";
  if workers < 1 then invalid_arg "Server.config: workers must be >= 1";
  if queue_depth < 1 then
    invalid_arg "Server.config: queue_depth must be >= 1";
  if max_body < 1 then invalid_arg "Server.config: max_body must be >= 1";
  if read_timeout_ms < 0. then
    invalid_arg "Server.config: negative read_timeout_ms";
  { port; workers; queue_depth; max_body; read_timeout_ms }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  engine_ : Engine.t;
  pool : Pool.t;
  inflight : int Atomic.t;  (* admitted (queued or running) jobs *)
  stopping : bool Atomic.t;
  started_at : float;
}

(* Request-lifecycle metrics; live only while Obs recording is on
   ([soctest serve] enables metrics-only mode at startup). *)
let accepted_c = Obs.counter "serve.accepted"
let rejected_c = Obs.counter "serve.rejected"
let bad_request_c = Obs.counter "serve.bad_request"
let completed_c = Obs.counter "serve.completed"
let deadline_c = Obs.counter "serve.deadline_exceeded"
let inflight_g = Obs.gauge "serve.inflight"
let latency_h = Obs.histogram "serve.latency_ms"

let create ?engine cfg =
  let engine_ =
    match engine with Some e -> e | None -> Engine.create ()
  in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd SO_REUSEADDR true;
     Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, cfg.port));
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  {
    cfg;
    listen_fd = fd;
    bound_port;
    engine_;
    pool = Pool.create ~jobs:cfg.workers;
    inflight = Atomic.make 0;
    stopping = Atomic.make false;
    started_at = Unix.gettimeofday ();
  }

let port t = t.bound_port
let engine t = t.engine_
let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()
let json_headers = [ ("Content-Type", "application/json") ]

let respond ?(headers = json_headers) fd ~status body =
  Http.write_response ~headers fd ~status body

(* answer inline and hang up — the non-admitted paths *)
let finish ?headers t_fd ~status body =
  respond ?headers t_fd ~status body;
  close_quietly t_fd

(* ------------------------------------------------------------------ *)
(* GET endpoints — answered in the accept loop, never queued *)

let uptime_ms t = (Unix.gettimeofday () -. t.started_at) *. 1000.

let healthz t =
  Json.to_string
    (Json.Obj
       [
         ( "status",
           Json.String (if Atomic.get t.stopping then "draining" else "ok")
         );
         ("uptime_ms", Json.Float (uptime_ms t));
         ("inflight", Json.Int (Atomic.get t.inflight));
         ("workers", Json.Int t.cfg.workers);
         ("queue_depth", Json.Int t.cfg.queue_depth);
       ])

let metrics t =
  let m = Obs.metrics () in
  let cache_obj (hits, misses) =
    Json.Obj [ ("hits", Json.Int hits); ("misses", Json.Int misses) ]
  in
  let store_obj =
    (* per-tier counters: numeric fields are always present so clients
       (bench-serve) can diff them without probing for the store *)
    let s = Engine.store_stats t.engine_ in
    let static =
      [
        ("hits", Json.Int s.Engine.hits);
        ("misses", Json.Int s.Engine.misses);
        ("audit_rejects", Json.Int s.Engine.audit_rejects);
        ("write_errors", Json.Int s.Engine.write_errors);
      ]
    in
    match Engine.store t.engine_ with
    | None -> Json.Obj (("enabled", Json.Bool false) :: static)
    | Some store ->
      let fs = Soctest_store.Store.stats store in
      Json.Obj
        (("enabled", Json.Bool true)
        :: static
        @ [
            ("path", Json.String (Soctest_store.Store.path store));
            ("entries", Json.Int fs.Soctest_store.Store.entries);
            ("file_bytes", Json.Int fs.Soctest_store.Store.file_bytes);
            ("appends", Json.Int fs.Soctest_store.Store.appends);
          ])
  in
  Json.to_string
    (Json.Obj
       [
         ("uptime_ms", Json.Float (uptime_ms t));
         ("inflight", Json.Int (Atomic.get t.inflight));
         ( "engine",
           (* counted inside the engine, visible even when Obs is off *)
           Json.Obj
             [
               ("pareto", cache_obj (Engine.pareto_cache_stats t.engine_));
               ("eval", cache_obj (Engine.eval_cache_stats t.engine_));
               ("store", store_obj);
             ] );
         ( "counters",
           Json.Obj
             (List.map (fun (k, v) -> (k, Json.Int v)) m.Obs.counters) );
         ( "gauges",
           Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) m.Obs.gauges)
         );
         ( "histograms",
           Json.Obj
             (List.map
                (fun (k, buckets) ->
                  ( k,
                    Json.List
                      (List.map
                         (fun (edge, count) ->
                           (* the overflow edge is infinity -> null *)
                           Json.List [ Json.Float edge; Json.Int count ])
                         buckets) ))
                m.Obs.histograms) );
       ])

(* ------------------------------------------------------------------ *)
(* solve / check execution — runs on a pool worker *)

let constraints_of_solve (req : Protocol.solve_request) =
  match req.problem with
  | Protocol.P1 ->
    Constraint_def.empty ~core_count:(Soc_def.core_count req.soc)
  | Protocol.P2 | Protocol.P3 ->
    let max_preemptions =
      match req.preempt with
      | Some limit -> Flow.preemption_budget req.soc ~limit
      | None -> []
    in
    Constraint_def.of_soc req.soc ?power_limit:req.power_limit
      ~max_preemptions ()

let grid_of = function
  | Protocol.Point -> Engine.point_grid ()
  | Protocol.Grid -> Engine.default_grid

let problem_name = function
  | Protocol.P1 -> "p1"
  | Protocol.P2 -> "p2"
  | Protocol.P3 -> "p3"

let status_name = function
  | Engine.Complete -> "complete"
  | Engine.Deadline -> "deadline"

let handle_solve t fd (req : Protocol.solve_request) ~budget =
  (* test/bench aid: hold this worker to make admission control
     deterministic under test *)
  if req.stall_ms > 0 then Unix.sleepf (float_of_int req.stall_ms /. 1000.);
  let constraints = constraints_of_solve req in
  let solve ~tam_width =
    Engine.solve t.engine_
      (Engine.request req.soc ~tam_width ~constraints ~wmax:req.wmax
         ~grid:(grid_of req.strategy) ~budget ())
  in
  let common =
    [
      ("soc", Json.String req.soc_source);
      ("width", Json.Int req.tam_width);
      ("problem", Json.String (problem_name req.problem));
    ]
  in
  match req.problem with
  | Protocol.P1 | Protocol.P2 ->
    let outcome = solve ~tam_width:req.tam_width in
    (match outcome.Engine.status with
    | Engine.Deadline -> Obs.incr deadline_c
    | Engine.Complete -> ());
    (* no unaudited schedule leaves the service *)
    let audit =
      Audit.run req.soc
        (Engine.audit_spec t.engine_ ~wmax:req.wmax
           ~expect_tam_width:req.tam_width constraints)
        outcome.Engine.result.Optimizer.schedule
    in
    if Audit.ok audit then
      respond fd ~status:200
        (Json.to_string
           (Json.Obj
              (common
              @ [
                  ("result", Protocol.json_of_outcome ~soc:req.soc outcome);
                  ("audit", Protocol.json_of_report audit);
                ])))
    else
      (* a dirty schedule out of the solver is a server bug, not a
         client error *)
      respond fd ~status:500
        (Protocol.error_body
           ~detail:(Json.Obj [ ("audit", Protocol.json_of_report audit) ])
           "solver produced a schedule that failed its audit")
  | Protocol.P3 ->
    let max_width = Option.value req.max_width ~default:req.tam_width in
    let widths = List.init max_width (fun i -> i + 1) in
    let outcomes =
      Engine.solve_many t.engine_
        (List.map
           (fun w ->
             Engine.request req.soc ~tam_width:w ~constraints ~wmax:req.wmax
               ~grid:(grid_of req.strategy) ~budget ())
           widths)
    in
    if List.exists (fun o -> o.Engine.status = Engine.Deadline) outcomes
    then Obs.incr deadline_c;
    let points =
      List.map2
        (fun w (o : Engine.outcome) ->
          let time = o.Engine.result.Optimizer.testing_time in
          Json.Obj
            [
              ("width", Json.Int w);
              ("time", Json.Int time);
              ("volume", Json.Int (w * time));
              ("status", Json.String (status_name o.Engine.status));
            ])
        widths outcomes
    in
    let evaluations =
      List.fold_left (fun n o -> n + o.Engine.evaluations) 0 outcomes
    in
    respond fd ~status:200
      (Json.to_string
         (Json.Obj
            (common
            @ [
                ("points", Json.List points);
                ("evaluations", Json.Int evaluations);
              ])))

let handle_check t fd (req : Protocol.check_request) =
  let max_preemptions =
    match req.preempt with
    | Some limit when limit >= 0 -> Flow.preemption_budget req.soc ~limit
    | _ -> []
  in
  let constraints =
    Constraint_def.of_soc req.soc ?power_limit:req.power_limit
      ~max_preemptions ()
  in
  let spec =
    Engine.audit_spec t.engine_ ~wmax:req.wmax
      ~require_complete:(not req.partial) constraints
  in
  let report = Audit.run req.soc spec req.schedule in
  (* violations are the answer here, not an error *)
  respond fd ~status:200
    (Json.to_string
       (Json.Obj
          [
            ("soc", Json.String req.soc_source);
            ("audit", Protocol.json_of_report report);
          ]))

(* ------------------------------------------------------------------ *)
(* admission control *)

let try_admit t =
  let rec go () =
    let n = Atomic.get t.inflight in
    if n >= t.cfg.queue_depth then false
    else if Atomic.compare_and_set t.inflight n (n + 1) then true
    else go ()
  in
  go ()

let note_inflight t = Obs.set_gauge inflight_g (float_of_int (Atomic.get t.inflight))

(* Wrap an admitted job: deliver some answer no matter what, then
   release the fd and the admission slot. *)
let job t fd ~arrival run () =
  Fun.protect
    ~finally:(fun () ->
      close_quietly fd;
      Atomic.decr t.inflight;
      note_inflight t)
    (fun () ->
      (try run ()
       with
      | Optimizer.Infeasible msg ->
        respond fd ~status:422 (Protocol.error_body ("infeasible: " ^ msg))
      | exn ->
        respond fd ~status:500 (Protocol.error_body (Printexc.to_string exn)));
      Obs.incr completed_c;
      Obs.observe latency_h ((Unix.gettimeofday () -. arrival) *. 1000.))

let admit t fd ?budget_ms run =
  if not (try_admit t) then begin
    Obs.incr rejected_c;
    finish fd ~status:429
      ~headers:(("Retry-After", "1") :: json_headers)
      (Protocol.error_body "queue full, retry later")
  end
  else begin
    Obs.incr accepted_c;
    note_inflight t;
    (* created at admission: queue wait burns the caller's budget *)
    let budget =
      match budget_ms with
      | None -> Budget.unlimited
      | Some ms -> Budget.create ~deadline_ms:ms ()
    in
    let arrival = Unix.gettimeofday () in
    match Pool.submit t.pool (job t fd ~arrival (fun () -> run ~budget)) with
    | () -> ()
    | exception Invalid_argument _ ->
      (* raced with shutdown *)
      Atomic.decr t.inflight;
      note_inflight t;
      finish fd ~status:503 (Protocol.error_body "server shutting down")
  end

(* ------------------------------------------------------------------ *)
(* routing and the accept loop *)

let route t fd (req : Http.request) =
  match (req.Http.meth, req.Http.target) with
  | "GET", "/healthz" -> finish fd ~status:200 (healthz t)
  | "GET", "/v1/metrics" -> finish fd ~status:200 (metrics t)
  | "POST", "/v1/solve" -> (
    match Protocol.solve_request_of_body req.Http.body with
    | Error msg ->
      Obs.incr bad_request_c;
      finish fd ~status:400 (Protocol.error_body msg)
    | Ok sreq ->
      admit t fd ?budget_ms:sreq.Protocol.budget_ms (fun ~budget ->
          handle_solve t fd sreq ~budget))
  | "POST", "/v1/check" -> (
    match Protocol.check_request_of_body req.Http.body with
    | Error msg ->
      Obs.incr bad_request_c;
      finish fd ~status:400 (Protocol.error_body msg)
    | Ok creq -> admit t fd (fun ~budget:_ -> handle_check t fd creq))
  | (("GET" | "POST") as meth), target ->
    Obs.incr bad_request_c;
    finish fd ~status:404
      (Protocol.error_body
         (Printf.sprintf "no such endpoint: %s %s" meth target))
  | meth, _ ->
    Obs.incr bad_request_c;
    finish fd ~status:405
      (Protocol.error_body (Printf.sprintf "method %s not supported" meth))

let handle_connection t fd =
  Unix.setsockopt_float fd SO_RCVTIMEO (t.cfg.read_timeout_ms /. 1000.);
  match Http.read_request ~max_body:t.cfg.max_body fd with
  | Error (Http.Bad_request msg) ->
    Obs.incr bad_request_c;
    finish fd ~status:400 (Protocol.error_body msg)
  | Error (Http.Payload_too_large { limit }) ->
    Obs.incr bad_request_c;
    finish fd ~status:413
      (Protocol.error_body
         (Printf.sprintf "request body exceeds %d bytes" limit))
  | Error Http.Timeout ->
    Obs.incr bad_request_c;
    finish fd ~status:408 (Protocol.error_body "timed out reading request")
  | Error Http.Closed -> close_quietly fd
  | Ok req -> route t fd req

let run t =
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept t.listen_fd with
      | fd, _ ->
        (try handle_connection t fd
         with exn ->
           (* defensive: no single connection may kill the loop *)
           (try
              respond fd ~status:500
                (Protocol.error_body (Printexc.to_string exn))
            with _ -> ());
           close_quietly fd);
        loop ()
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (ECONNABORTED, _, _) -> loop ()
      | exception Unix.Unix_error ((EINVAL | EBADF), _, _)
        when Atomic.get t.stopping ->
        (* [stop] shut the listener down under us — the normal exit *)
        ()
  in
  loop ();
  (* drain: every admitted job is answered before we return *)
  Pool.shutdown t.pool;
  close_quietly t.listen_fd

let stop t =
  if not (Atomic.exchange t.stopping true) then
    (* wakes a blocked [accept] (EINVAL on Linux) — closing the fd alone
       does not reliably do that *)
    try Unix.shutdown t.listen_fd SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()
