module Engine = Soctest_engine.Engine
module Flow = Soctest_engine.Flow
module Budget = Soctest_core.Budget
module Optimizer = Soctest_core.Optimizer
module Lower_bound = Soctest_core.Lower_bound
module Rectpack = Soctest_pack.Rectpack
module Schedule = Soctest_tam.Schedule
module Constraint_def = Soctest_constraints.Constraint_def
module Soc_def = Soctest_soc.Soc_def
module Audit = Soctest_check.Audit
module Obs = Soctest_obs.Obs
module Json = Soctest_obs.Json
module Clock = Soctest_obs.Clock
module Log = Soctest_obs.Log
module Flight = Soctest_obs.Flight
module Prom = Soctest_obs.Prom

type config = {
  port : int;
  workers : int;
  queue_depth : int;
  max_body : int;
  read_timeout_ms : float;
  idle_timeout_ms : float;
  max_connections : int;
  max_conn_requests : int;
  admission : Dispatch.mode;
  job_capacity : int;
  job_ttl_ms : float;
  slow_ms : float option;
  flight_capacity : int;
}

let config ?(port = 8080)
    ?(workers = max 1 (Domain.recommended_domain_count () - 1))
    ?(queue_depth = 64) ?(max_body = Http.default_max_body)
    ?(read_timeout_ms = 10_000.) ?(idle_timeout_ms = 5_000.)
    ?(max_connections = 64) ?(max_conn_requests = 1000)
    ?(admission = Dispatch.Edf) ?(job_capacity = Jobs.default_capacity)
    ?(job_ttl_ms = Jobs.default_ttl_ms) ?slow_ms ?(flight_capacity = 256) ()
    =
  if port < 0 then invalid_arg "Server.config: negative port";
  if workers < 1 then invalid_arg "Server.config: workers must be >= 1";
  if queue_depth < 1 then
    invalid_arg "Server.config: queue_depth must be >= 1";
  if max_body < 1 then invalid_arg "Server.config: max_body must be >= 1";
  if read_timeout_ms < 0. then
    invalid_arg "Server.config: negative read_timeout_ms";
  if idle_timeout_ms < 0. then
    invalid_arg "Server.config: negative idle_timeout_ms";
  if max_connections < 1 then
    invalid_arg "Server.config: max_connections must be >= 1";
  if max_conn_requests < 1 then
    invalid_arg "Server.config: max_conn_requests must be >= 1";
  if job_capacity < 1 then
    invalid_arg "Server.config: job_capacity must be >= 1";
  if job_ttl_ms < 0. then invalid_arg "Server.config: negative job_ttl_ms";
  (match slow_ms with
  | Some ms when ms < 0. -> invalid_arg "Server.config: negative slow_ms"
  | _ -> ());
  if flight_capacity < 1 then
    invalid_arg "Server.config: flight_capacity must be >= 1";
  { port; workers; queue_depth; max_body; read_timeout_ms; idle_timeout_ms;
    max_connections; max_conn_requests; admission; job_capacity; job_ttl_ms;
    slow_ms; flight_capacity }

type t = {
  cfg : config;
  listen_fd : Unix.file_descr;
  bound_port : int;
  engine_ : Engine.t;
  dispatch : Dispatch.t;
  jobs : Jobs.t;
  inflight : int Atomic.t;  (* admitted (queued or running) solve/check *)
  conns : int Atomic.t;  (* open client connections *)
  conn_lock : Mutex.t;
  live : (int, Unix.file_descr * Thread.t) Hashtbl.t;  (* token -> conn *)
  conn_token : int Atomic.t;
  (* completed-handler statistics feeding the Retry-After estimate *)
  handled_n : int Atomic.t;
  handled_ms : int Atomic.t;
  stopping : bool Atomic.t;
  started_at : float;  (* monotonic ms *)
  flight : Flight.t;
}

(* Request-lifecycle metrics. [create] turns on metrics-only Obs
   recording itself, so these are live in every embedding, not just
   under [soctest serve]. *)
let accepted_c = Obs.counter "serve.accepted"
let rejected_c = Obs.counter "serve.rejected"
let bad_request_c = Obs.counter "serve.bad_request"
let completed_c = Obs.counter "serve.completed"
let deadline_c = Obs.counter "serve.deadline_exceeded"
let inflight_g = Obs.gauge "serve.inflight"

(* Latency buckets much finer than [Obs.default_edges]: the default
   decade-ish edges put every handler between 10 and 50 ms into one
   bucket, so server-side percentile estimates degenerated to a single
   edge value (BENCH_8 reported p50 = p99 = 50.000). Roughly 1.5x steps
   across the 1 ms – 5 s range keep within-bucket interpolation honest. *)
let latency_edges =
  [|
    1.; 2.; 3.; 5.; 7.5; 10.; 15.; 20.; 30.; 40.; 50.; 75.; 100.; 150.;
    200.; 300.; 500.; 750.; 1000.; 2000.; 5000.;
  |]

let latency_h = Obs.histogram ~edges:latency_edges "serve.latency_ms"
let conns_g = Obs.gauge "serve.connections"
let conn_accepted_c = Obs.counter "serve.conn_accepted"
let conn_rejected_c = Obs.counter "serve.conn_rejected"

(* Per-endpoint/per-status series: labels ride inside the registry name
   (the {!Prom} rendering convention), so the registry stays a flat
   table and these land as labelled Prometheus series. *)
let requests_c ~endpoint ~status =
  Obs.counter
    (Printf.sprintf "serve.requests{endpoint=%S,status=%S}" endpoint
       (string_of_int status))

let request_ms_h ~endpoint =
  Obs.histogram ~edges:latency_edges
    (Printf.sprintf "serve.request_ms{endpoint=%S}" endpoint)

let create ?engine cfg =
  (* metrics-only: embedding [Server] must not silently record nothing,
     and must not clobber an Obs session a host already runs (tests
     enable full recording before creating servers) *)
  if not (Obs.enabled ()) then Obs.enable ~events:false ();
  let engine_ =
    match engine with Some e -> e | None -> Engine.create ()
  in
  let fd = Unix.socket PF_INET SOCK_STREAM 0 in
  (try
     Unix.setsockopt fd SO_REUSEADDR true;
     Unix.bind fd (ADDR_INET (Unix.inet_addr_loopback, cfg.port));
     Unix.listen fd 128
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  let bound_port =
    match Unix.getsockname fd with
    | ADDR_INET (_, p) -> p
    | _ -> cfg.port
  in
  {
    cfg;
    listen_fd = fd;
    bound_port;
    engine_;
    dispatch = Dispatch.create ~mode:cfg.admission ~jobs:cfg.workers ();
    jobs = Jobs.create ~capacity:cfg.job_capacity ~ttl_ms:cfg.job_ttl_ms ();
    inflight = Atomic.make 0;
    conns = Atomic.make 0;
    conn_lock = Mutex.create ();
    live = Hashtbl.create 32;
    conn_token = Atomic.make 0;
    handled_n = Atomic.make 0;
    handled_ms = Atomic.make 0;
    stopping = Atomic.make false;
    started_at = Clock.now_ms ();
    flight = Flight.create ~capacity:cfg.flight_capacity;
  }

let port t = t.bound_port
let engine t = t.engine_
let flight_recorder t = t.flight
let job_store t = t.jobs
let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()
let json_headers = [ ("Content-Type", "application/json") ]

(* ------------------------------------------------------------------ *)
(* Per-request context and the uniform completion path. Handlers build
   a [reply]; [complete] writes it (echoing the request id) and then
   [observe]s it — per-endpoint metrics, the flight record, a {!Log}
   dump on 5xx or a slow request. Async jobs run [observe] without
   [complete]: their bytes leave later, through GET /v1/jobs/<id>. *)

type reply = {
  status : int;
  headers : (string * string) list;
  body : string;
}

let json_reply ?(headers = []) ~status body =
  { status; headers = headers @ json_headers; body }

let error_reply ?detail ~code msg =
  json_reply ~status:(Protocol.error_status code)
    (Protocol.error_body ~code ?detail msg)

type ctx = {
  id : string;
  endpoint : string;
  accepted_at : float;  (* monotonic ms: request parsed, context minted *)
  mutable queued_at : float;  (* monotonic ms at admission *)
  mutable phases : (string * float) list;  (* reverse accumulation *)
  mutable tier : string;
  mutable store_rejected : bool;
  mutable healed : bool;
}

(* An inbound x-request-id is echoed when it is a sane header token;
   anything else (or nothing) gets a fresh ULID. *)
let acceptable_inbound_id s =
  let n = String.length s in
  n > 0 && n <= 64
  && String.for_all
       (function
         | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> true
         | _ -> false)
       s

let make_ctx ?req ?id ~endpoint () =
  let id =
    match id with
    | Some id -> id
    | None -> (
      match Option.bind req (fun r -> Http.header r "x-request-id") with
      | Some inbound when acceptable_inbound_id inbound -> inbound
      | _ -> Ulid.gen ())
  in
  {
    id;
    endpoint;
    accepted_at = Clock.now_ms ();
    queued_at = 0.;
    phases = [];
    tier = "-";
    store_rejected = false;
    healed = false;
  }

let add_phase ctx name ms = ctx.phases <- (name, ms) :: ctx.phases

let phase ctx name f =
  let t0 = Clock.now_ms () in
  let r = f () in
  add_phase ctx name (Float.max 0. (Clock.now_ms () -. t0));
  r

(* Merge repeated phase names (a P3 sweep attributes engine phases once
   per width) and restore accumulation order. *)
let merged_phases ctx =
  List.fold_left
    (fun acc (name, ms) ->
      match List.assoc_opt name acc with
      | Some _ ->
        List.map (fun (n, v) -> if n = name then (n, v +. ms) else (n, v)) acc
      | None -> acc @ [ (name, ms) ])
    [] (List.rev ctx.phases)

let observe t ctx (reply : reply) =
  let total = Float.max 0. (Clock.now_ms () -. ctx.accepted_at) in
  Obs.observe latency_h total;
  Obs.observe (request_ms_h ~endpoint:ctx.endpoint) total;
  Obs.incr (requests_c ~endpoint:ctx.endpoint ~status:reply.status);
  let slow =
    match t.cfg.slow_ms with Some ms -> total > ms | None -> false
  in
  let record =
    {
      Flight.id = ctx.id;
      endpoint = ctx.endpoint;
      status = reply.status;
      total_ms = total;
      phases = merged_phases ctx;
      tier = ctx.tier;
      store_rejected = ctx.store_rejected;
      healed = ctx.healed;
      slow;
    }
  in
  Flight.record t.flight record;
  (* connection threads complete outside any [with_request]; re-assert
     the ambient id so every line carries it exactly once *)
  Obs.with_request ctx.id @@ fun () ->
  Log.info "serve.request"
    ~fields:
      [
        ("endpoint", Json.String ctx.endpoint);
        ("status", Json.Int reply.status);
        ("total_ms", Json.Float total);
        ("tier", Json.String ctx.tier);
      ];
  if reply.status >= 500 then
    Log.error "serve.error_response"
      ~fields:[ ("record", Flight.to_json record) ]
  else if slow then
    Log.warn "serve.slow" ~fields:[ ("record", Flight.to_json record) ]

let complete t ctx conn ~close (reply : reply) =
  let w0 = Clock.now_ms () in
  Http.write_response
    ~headers:(("x-request-id", ctx.id) :: reply.headers)
    ~close (Http.fd conn) ~status:reply.status reply.body;
  add_phase ctx "write" (Float.max 0. (Clock.now_ms () -. w0));
  observe t ctx reply

(* ------------------------------------------------------------------ *)
(* GET endpoints — answered on the connection thread, never queued *)

let uptime_ms t = Float.max 0. (Clock.now_ms () -. t.started_at)

let healthz t =
  Json.to_string
    (Json.Obj
       [
         ( "status",
           Json.String (if Atomic.get t.stopping then "draining" else "ok")
         );
         ("uptime_ms", Json.Float (uptime_ms t));
         ("inflight", Json.Int (Atomic.get t.inflight));
         ("connections", Json.Int (Atomic.get t.conns));
         ("workers", Json.Int t.cfg.workers);
         ("queue_depth", Json.Int t.cfg.queue_depth);
         ("admission", Json.String (Dispatch.mode_name t.cfg.admission));
       ])

let metrics t =
  let m = Obs.metrics () in
  let cache_obj (hits, misses) =
    Json.Obj [ ("hits", Json.Int hits); ("misses", Json.Int misses) ]
  in
  let store_obj =
    (* per-tier counters: numeric fields are always present so clients
       (bench-serve) can diff them without probing for the store *)
    let s = Engine.store_stats t.engine_ in
    let static =
      [
        ("hits", Json.Int s.Engine.hits);
        ("misses", Json.Int s.Engine.misses);
        ("audit_rejects", Json.Int s.Engine.audit_rejects);
        ("write_errors", Json.Int s.Engine.write_errors);
      ]
    in
    match Engine.store t.engine_ with
    | None -> Json.Obj (("enabled", Json.Bool false) :: static)
    | Some store ->
      let fs = Soctest_store.Store.stats store in
      Json.Obj
        (("enabled", Json.Bool true)
        :: static
        @ [
            ("path", Json.String (Soctest_store.Store.path store));
            ("entries", Json.Int fs.Soctest_store.Store.entries);
            ("file_bytes", Json.Int fs.Soctest_store.Store.file_bytes);
            ("appends", Json.Int fs.Soctest_store.Store.appends);
          ])
  in
  let jobs_obj =
    let s = Jobs.stats t.jobs in
    Json.Obj
      [
        ("queued", Json.Int s.Jobs.s_queued);
        ("running", Json.Int s.Jobs.s_running);
        ("done", Json.Int s.Jobs.s_done);
        ("cancelled", Json.Int s.Jobs.s_cancelled);
        ("retained", Json.Int s.Jobs.s_retained);
        ("capacity", Json.Int s.Jobs.s_capacity);
      ]
  in
  Json.to_string
    (Json.Obj
       [
         ("uptime_ms", Json.Float (uptime_ms t));
         ("inflight", Json.Int (Atomic.get t.inflight));
         ("connections", Json.Int (Atomic.get t.conns));
         ("admission", Json.String (Dispatch.mode_name t.cfg.admission));
         ("jobs", jobs_obj);
         ( "engine",
           (* counted inside the engine, visible even when Obs is off *)
           Json.Obj
             [
               ("pareto", cache_obj (Engine.pareto_cache_stats t.engine_));
               ("eval", cache_obj (Engine.eval_cache_stats t.engine_));
               ("store", store_obj);
             ] );
         ( "counters",
           Json.Obj
             (List.map (fun (k, v) -> (k, Json.Int v)) m.Obs.counters) );
         ( "gauges",
           Json.Obj (List.map (fun (k, v) -> (k, Json.Float v)) m.Obs.gauges)
         );
         ( "histograms",
           Json.Obj
             (List.map
                (fun (k, buckets) ->
                  ( k,
                    Json.List
                      (List.map
                         (fun (edge, count) ->
                           (* the overflow edge is infinity -> null *)
                           Json.List [ Json.Float edge; Json.Int count ])
                         buckets) ))
                m.Obs.histograms) );
       ])

let debug_requests t query =
  let limit =
    match List.assoc_opt "limit" query with
    | Some v -> int_of_string_opt v
    | None -> None
  in
  Json.to_string
    (Json.Obj
       [
         ( "requests",
           Json.List (List.map Flight.to_json (Flight.recent ?limit t.flight))
         );
       ])

(* ------------------------------------------------------------------ *)
(* solve / check execution — runs on a dispatch worker domain *)

let constraints_of_solve (req : Protocol.solve_request) =
  match req.problem with
  | Protocol.P1 ->
    Constraint_def.empty ~core_count:(Soc_def.core_count req.soc)
  | Protocol.P2 | Protocol.P3 ->
    let max_preemptions =
      match req.preempt with
      | Some limit -> Flow.preemption_budget req.soc ~limit
      | None -> []
    in
    Constraint_def.of_soc req.soc ?power_limit:req.power_limit
      ~max_preemptions ()

let grid_of = function
  | Protocol.Point -> Engine.point_grid ()
  | Protocol.Grid -> Engine.default_grid
  | Protocol.Rectpack | Protocol.Rectpack_diag ->
    (* rectpack solves bypass the evaluation grid (see [handle_solve]) *)
    invalid_arg "grid_of: rectpack strategies do not search a grid"

let problem_name = function
  | Protocol.P1 -> "p1"
  | Protocol.P2 -> "p2"
  | Protocol.P3 -> "p3"

let status_name = function
  | Engine.Complete -> "complete"
  | Engine.Deadline -> "deadline"

(* Attribute an engine solve's elapsed time to the flight-record
   phases: disk probe+audit and optimizer time are measured inside the
   engine; the remainder is memory-cache probing and bookkeeping. *)
let note_engine_phases ctx (s : Engine.stats) =
  let probe = s.Engine.store_probe_ms in
  let solve = s.Engine.eval_solve_ms in
  add_phase ctx "cache_probe"
    (Float.max 0. (s.Engine.elapsed_ms -. probe -. solve));
  add_phase ctx "disk_audit" probe;
  add_phase ctx "solve" solve

let note_tier ctx (s : Engine.stats) =
  ctx.tier <-
    (if s.Engine.eval_computed > 0 then "solve"
     else if s.Engine.eval_from_store > 0 then "store"
     else "memory")

(* Store-audit outcome flags, from the engine's tier counters around
   the solve. [healed] means a rejected entry degraded to a fresh solve
   whose write-through then replaced it. Deltas are per-engine, so a
   concurrent worker's reject can blur attribution — good enough for a
   diagnostic flag. *)
let with_store_flags t ctx f =
  let s0 = Engine.store_stats t.engine_ in
  let r = f () in
  let s1 = Engine.store_stats t.engine_ in
  if s1.Engine.audit_rejects > s0.Engine.audit_rejects then begin
    ctx.store_rejected <- true;
    ctx.healed <- s1.Engine.write_errors = s0.Engine.write_errors
  end;
  r

let handle_solve t ctx (req : Protocol.solve_request) ~budget =
  (* test/bench aid: hold this worker to make admission control
     deterministic under test *)
  if req.stall_ms > 0 then
    phase ctx "stall" (fun () ->
        Unix.sleepf (float_of_int req.stall_ms /. 1000.));
  let constraints = phase ctx "prep" (fun () -> constraints_of_solve req) in
  (* a rectpack solve does not search the evaluation grid; it runs the
     packer directly and is dressed as an [Engine.outcome] so the audit,
     flight-record and rendering paths below stay uniform *)
  let rectpack_solve ~tam_width order =
    let t0 = Clock.now_ms () in
    let prepared = Engine.prepare t.engine_ ~wmax:req.wmax req.soc in
    let o = Rectpack.schedule ~order prepared ~tam_width ~constraints in
    let elapsed = Clock.now_ms () -. t0 in
    let sched = o.Rectpack.schedule in
    let widths =
      List.filter_map
        (fun c -> Option.map (fun w -> (c, w)) (Schedule.width_of_core sched c))
        (Schedule.cores sched)
    in
    {
      Engine.result =
        {
          Optimizer.schedule = sched;
          testing_time = o.Rectpack.testing_time;
          widths;
          preemptions = [];
          params = Optimizer.default_params;
        };
      status = Engine.Complete;
      evaluations = 1;
      stats =
        {
          Engine.pareto_computed = 0;
          pareto_cached = 0;
          eval_computed = 1;
          eval_cached = 0;
          eval_deduped = 0;
          eval_from_store = 0;
          elapsed_ms = elapsed;
          store_probe_ms = 0.;
          eval_solve_ms = elapsed;
        };
    }
  in
  let solve ~tam_width =
    match req.strategy with
    | Protocol.Point | Protocol.Grid ->
      Engine.solve t.engine_
        (Engine.request req.soc ~tam_width ~constraints ~wmax:req.wmax
           ~grid:(grid_of req.strategy) ~budget ())
    | Protocol.Rectpack -> rectpack_solve ~tam_width Rectpack.Plain
    | Protocol.Rectpack_diag -> rectpack_solve ~tam_width Rectpack.Diagonal
  in
  let common =
    [
      ("soc", Json.String req.soc_source);
      ("width", Json.Int req.tam_width);
      ("problem", Json.String (problem_name req.problem));
    ]
  in
  match req.problem with
  | Protocol.P1 | Protocol.P2 ->
    let outcome =
      with_store_flags t ctx (fun () -> solve ~tam_width:req.tam_width)
    in
    note_engine_phases ctx outcome.Engine.stats;
    note_tier ctx outcome.Engine.stats;
    (match outcome.Engine.status with
    | Engine.Deadline -> Obs.incr deadline_c
    | Engine.Complete -> ());
    (* no unaudited schedule leaves the service *)
    let audit =
      phase ctx "audit" (fun () ->
          Audit.run req.soc
            (Engine.audit_spec t.engine_ ~wmax:req.wmax
               ~expect_tam_width:req.tam_width constraints)
            outcome.Engine.result.Optimizer.schedule)
    in
    let lower_bound =
      phase ctx "bound" (fun () ->
          Lower_bound.compute_constrained
            (Engine.prepare t.engine_ ~wmax:req.wmax req.soc)
            ~tam_width:req.tam_width ~constraints)
    in
    if Audit.ok audit then
      json_reply ~status:200
        (phase ctx "render" (fun () ->
             Json.to_string
               (Json.Obj
                  (common
                  @ [
                      ( "result",
                        Protocol.json_of_outcome ~lower_bound ~soc:req.soc
                          outcome );
                      ("audit", Protocol.json_of_report audit);
                    ]))))
    else
      (* a dirty schedule out of the solver is a server bug, not a
         client error *)
      json_reply ~status:500
        (Protocol.error_body ~code:Protocol.Internal
           ~detail:(Json.Obj [ ("audit", Protocol.json_of_report audit) ])
           "solver produced a schedule that failed its audit")
  | Protocol.P3 ->
    let max_width = Option.value req.max_width ~default:req.tam_width in
    let widths = List.init max_width (fun i -> i + 1) in
    let outcomes =
      with_store_flags t ctx (fun () ->
          match req.strategy with
          | Protocol.Point | Protocol.Grid ->
            Engine.solve_many t.engine_
              (List.map
                 (fun w ->
                   Engine.request req.soc ~tam_width:w ~constraints
                     ~wmax:req.wmax ~grid:(grid_of req.strategy) ~budget ())
                 widths)
          | Protocol.Rectpack | Protocol.Rectpack_diag ->
            List.map (fun w -> solve ~tam_width:w) widths)
    in
    List.iter (fun (o : Engine.outcome) ->
        note_engine_phases ctx o.Engine.stats)
      outcomes;
    (* the sweep's tier is its most expensive constituent *)
    let summed =
      List.fold_left
        (fun (c, s) (o : Engine.outcome) ->
          ( c + o.Engine.stats.Engine.eval_computed,
            s + o.Engine.stats.Engine.eval_from_store ))
        (0, 0) outcomes
    in
    (ctx.tier <-
       (match summed with
       | c, _ when c > 0 -> "solve"
       | _, s when s > 0 -> "store"
       | _ -> "memory"));
    if List.exists (fun o -> o.Engine.status = Engine.Deadline) outcomes
    then Obs.incr deadline_c;
    let points =
      List.map2
        (fun w (o : Engine.outcome) ->
          let time = o.Engine.result.Optimizer.testing_time in
          Json.Obj
            [
              ("width", Json.Int w);
              ("time", Json.Int time);
              ("volume", Json.Int (w * time));
              ("status", Json.String (status_name o.Engine.status));
            ])
        widths outcomes
    in
    let evaluations =
      List.fold_left (fun n o -> n + o.Engine.evaluations) 0 outcomes
    in
    json_reply ~status:200
      (phase ctx "render" (fun () ->
           Json.to_string
             (Json.Obj
                (common
                @ [
                    ("points", Json.List points);
                    ("evaluations", Json.Int evaluations);
                  ]))))

let handle_check t ctx (req : Protocol.check_request) =
  let constraints =
    phase ctx "prep" (fun () ->
        let max_preemptions =
          match req.preempt with
          | Some limit when limit >= 0 ->
            Flow.preemption_budget req.soc ~limit
          | _ -> []
        in
        Constraint_def.of_soc req.soc ?power_limit:req.power_limit
          ~max_preemptions ())
  in
  let spec =
    Engine.audit_spec t.engine_ ~wmax:req.wmax
      ~require_complete:(not req.partial) constraints
  in
  let report = phase ctx "audit" (fun () -> Audit.run req.soc spec req.schedule) in
  (* violations are the answer here, not an error *)
  json_reply ~status:200
    (phase ctx "render" (fun () ->
         Json.to_string
           (Json.Obj
              [
                ("soc", Json.String req.soc_source);
                ("audit", Protocol.json_of_report report);
              ])))

(* ------------------------------------------------------------------ *)
(* admission control *)

let try_admit t =
  let rec go () =
    let n = Atomic.get t.inflight in
    if n >= t.cfg.queue_depth then false
    else if Atomic.compare_and_set t.inflight n (n + 1) then true
    else go ()
  in
  go ()

let note_inflight t =
  Obs.set_gauge inflight_g (float_of_int (Atomic.get t.inflight))

let release_slot t =
  Atomic.decr t.inflight;
  note_inflight t

(* Retry-After for a full admission window: how long until a slot
   should free up, from the current backlog and the recent mean
   handler time spread over the workers. Clamped to [1, 60] s. Before
   any request has completed, the mean is undefined (0/0); rather than
   collapsing the whole estimate to the floor — a cold server that is
   already saturated is exactly when honest backpressure matters — we
   assume a 250 ms handler so the estimate still scales with backlog.
   The final clamp goes through [Float.is_nan] so no arithmetic
   surprise can reach [int_of_float nan] (which is 0, i.e. a
   "Retry-After: 0" header telling clients to hammer us). *)
let cold_start_mean_ms = 250.

let retry_after_s t =
  let n = Atomic.get t.handled_n in
  let mean_ms =
    if n = 0 then cold_start_mean_ms
    else float_of_int (Atomic.get t.handled_ms) /. float_of_int n
  in
  let backlog = float_of_int (Atomic.get t.inflight) in
  let s = ceil (backlog *. mean_ms /. float_of_int t.cfg.workers /. 1000.) in
  if Float.is_nan s then 1 else int_of_float (Float.min 60. (Float.max 1. s))

(* Run an admitted handler on a worker domain: ambient request id,
   queue-wait phase, handler-time sample for {!retry_after_s}, and the
   uniform exception-to-reply mapping. Always yields a reply. *)
let run_admitted t ctx run =
  Obs.with_request ctx.id @@ fun () ->
  add_phase ctx "queue" (Float.max 0. (Clock.now_ms () -. ctx.queued_at));
  let t0 = Clock.now_ms () in
  let reply =
    try run ()
    with
    | Optimizer.Infeasible msg ->
      error_reply ~code:Protocol.Infeasible ("infeasible: " ^ msg)
    | exn -> error_reply ~code:Protocol.Internal (Printexc.to_string exn)
  in
  Atomic.incr t.handled_n;
  ignore
    (Atomic.fetch_and_add t.handled_ms
       (int_of_float (Float.max 0. (Clock.now_ms () -. t0))));
  reply

(* One-shot synchronization cell between the connection thread (which
   owns the socket and must write responses in pipeline order) and the
   worker domain that computes the reply. *)
type reply_cell = {
  cell_lock : Mutex.t;
  cell_cond : Condition.t;
  mutable cell : reply option;
}

let cell () =
  { cell_lock = Mutex.create (); cell_cond = Condition.create (); cell = None }

let put_cell c reply =
  Mutex.lock c.cell_lock;
  c.cell <- Some reply;
  Condition.signal c.cell_cond;
  Mutex.unlock c.cell_lock

let take_cell c =
  Mutex.lock c.cell_lock;
  while c.cell = None do
    Condition.wait c.cell_cond c.cell_lock
  done;
  let r = match c.cell with Some r -> r | None -> assert false in
  Mutex.unlock c.cell_lock;
  r

(* Absolute EDF key for the dispatch queue: a budgeted request's
   deadline in monotonic ms; an unbudgeted one has none and sorts after
   every budgeted request under {!Dispatch.Edf}. *)
let budget_of ?budget_ms () =
  match budget_ms with
  | None -> (Budget.unlimited, None)
  | Some ms -> (Budget.create ~deadline_ms:ms (), Some (Clock.now_ms () +. ms))

let reject_busy t ctx conn ~close =
  Obs.incr rejected_c;
  complete t ctx conn ~close
    {
      (error_reply ~code:Protocol.Queue_full "queue full, retry later") with
      headers =
        ("Retry-After", string_of_int (retry_after_s t)) :: json_headers;
    }

(* Synchronous solve/check: admit, dispatch, block this connection
   thread on the reply (responses stay in pipeline order because the
   next request is not read until this one is answered), write it. *)
let admit_sync t conn ctx ~close ?budget_ms run =
  if not (try_admit t) then reject_busy t ctx conn ~close
  else begin
    Obs.incr accepted_c;
    note_inflight t;
    (* created at admission: queue wait burns the caller's budget *)
    let budget, deadline = budget_of ?budget_ms () in
    ctx.queued_at <- Clock.now_ms ();
    let c = cell () in
    let task () = put_cell c (run_admitted t ctx (fun () -> run ~budget)) in
    match Dispatch.submit t.dispatch ?deadline task with
    | () ->
      Fun.protect
        ~finally:(fun () -> release_slot t)
        (fun () ->
          let reply = take_cell c in
          Obs.incr completed_c;
          complete t ctx conn ~close reply)
    | exception Invalid_argument _ ->
      (* raced with shutdown *)
      release_slot t;
      complete t ctx conn ~close:true
        (error_reply ~code:Protocol.Shutting_down "server shutting down")
  end

(* Async solve: admit and register the job, answer 202 immediately; the
   worker parks the rendered reply in the job store for
   GET /v1/jobs/<id> to collect. The job holds its admission slot until
   it finishes, so sync and async requests share one backpressure
   window. *)
let admit_async t conn ctx ~close (sreq : Protocol.solve_request) =
  if not (try_admit t) then reject_busy t ctx conn ~close
  else begin
    Obs.incr accepted_c;
    note_inflight t;
    let budget, deadline = budget_of ?budget_ms:sreq.Protocol.budget_ms () in
    let job_id = Ulid.gen () in
    match Jobs.submit t.jobs ~id:job_id ~request_id:ctx.id ~budget with
    | Error `Full ->
      release_slot t;
      Obs.incr rejected_c;
      complete t ctx conn ~close
        (error_reply ~code:Protocol.Jobs_full
           "job store full, retry later or collect finished jobs")
    | Ok entry -> (
      (* the job completes on its own context: the 202 below and the
         eventual solve are two observations, not one *)
      let jctx = make_ctx ~id:ctx.id ~endpoint:"async:/v1/solve" () in
      jctx.queued_at <- Clock.now_ms ();
      let task () =
        Fun.protect
          ~finally:(fun () -> release_slot t)
          (fun () ->
            (* false when the job was cancelled before a worker got to
               it — skip the solve, the slot is all there is to free *)
            if Jobs.start t.jobs entry then begin
              let reply =
                run_admitted t jctx (fun () -> handle_solve t jctx sreq ~budget)
              in
              Jobs.finish t.jobs entry
                { Jobs.status = reply.status; body = reply.body };
              Obs.incr completed_c;
              observe t jctx reply
            end)
      in
      match Dispatch.submit t.dispatch ?deadline task with
      | () ->
        complete t ctx conn ~close
          (json_reply ~status:202
             ~headers:
               [
                 ("Location", Protocol.job_url job_id);
                 ("x-job-id", job_id);
               ]
             (Protocol.job_accepted_body ~id:job_id))
      | exception Invalid_argument _ ->
        ignore (Jobs.cancel t.jobs job_id);
        release_slot t;
        complete t ctx conn ~close:true
          (error_reply ~code:Protocol.Shutting_down "server shutting down"))
  end

(* ------------------------------------------------------------------ *)
(* async job endpoints — answered on the connection thread *)

let job_path path =
  let prefix = "/v1/jobs/" in
  let n = String.length prefix in
  if String.length path > n && String.sub path 0 n = prefix then
    let id = String.sub path n (String.length path - n) in
    if String.contains id '/' then None else Some id
  else None

let job_status t ctx (id : string) =
  match Jobs.find t.jobs id with
  | None ->
    error_reply ~code:Protocol.Not_found
      (Printf.sprintf "no such job: %s (unknown or expired)" id)
  | Some v -> (
    match v.Jobs.v_outcome with
    | Some o ->
      (* replay the parked reply verbatim: the async result is
         bit-identical to what the sync path would have written *)
      ctx.tier <- "job";
      {
        status = o.Jobs.status;
        headers = json_headers @ [ ("x-job-id", id) ];
        body = o.Jobs.body;
      }
    | None ->
      json_reply ~status:200
        ~headers:[ ("x-job-id", id) ]
        (Json.to_string (Protocol.json_of_job v)))

let job_cancel t (id : string) =
  match Jobs.cancel t.jobs id with
  | `Unknown ->
    error_reply ~code:Protocol.Not_found
      (Printf.sprintf "no such job: %s (unknown or expired)" id)
  | `Already_finished state ->
    error_reply ~code:Protocol.Conflict
      ~detail:(Json.Obj [ ("state", Json.String state) ])
      "job already finished"
  | `Cancelled ->
    json_reply ~status:200
      (Json.to_string
         (Json.Obj
            [ ("id", Json.String id); ("state", Json.String "cancelled") ]))
  | `Cancelling ->
    (* running: budget cancelled, the solve is winding down *)
    json_reply ~status:202
      (Json.to_string
         (Json.Obj
            [ ("id", Json.String id); ("state", Json.String "cancelling") ]))

(* ------------------------------------------------------------------ *)
(* routing and the connection loop *)

let prom_headers = [ ("Content-Type", "text/plain; version=0.0.4") ]

let job_path_label = "/v1/jobs/:id"

let route t conn ~close (req : Http.request) =
  let path, query = Http.split_target req.Http.target in
  (* job polls must not mint one metric series per job id *)
  let endpoint =
    let prefix = "/v1/jobs/" in
    if
      String.length path >= String.length prefix
      && String.sub path 0 (String.length prefix) = prefix
    then job_path_label
    else path
  in
  let ctx = make_ctx ~req ~endpoint () in
  let answer reply = complete t ctx conn ~close reply in
  match (req.Http.meth, path) with
  | "GET", "/healthz" ->
    answer (phase ctx "render" (fun () -> json_reply ~status:200 (healthz t)))
  | "GET", "/v1/metrics" ->
    answer (phase ctx "render" (fun () -> json_reply ~status:200 (metrics t)))
  | "GET", "/metrics" ->
    answer
      (phase ctx "render" (fun () ->
           { status = 200; headers = prom_headers; body = Prom.render () }))
  | "GET", "/v1/debug/requests" ->
    answer
      (phase ctx "render" (fun () ->
           json_reply ~status:200 (debug_requests t query)))
  | "POST", "/v1/solve" -> (
    match Protocol.solve_request_of_body req.Http.body with
    | Error msg ->
      Obs.incr bad_request_c;
      answer (error_reply ~code:Protocol.Bad_request_error msg)
    | Ok sreq -> (
      match List.assoc_opt "mode" query with
      | None | Some "sync" ->
        admit_sync t conn ctx ~close ?budget_ms:sreq.Protocol.budget_ms
          (fun ~budget -> handle_solve t ctx sreq ~budget)
      | Some "async" -> admit_async t conn ctx ~close sreq
      | Some m ->
        Obs.incr bad_request_c;
        answer
          (error_reply ~code:Protocol.Bad_request_error
             (Printf.sprintf "unknown mode %S (sync or async)" m))))
  | "POST", "/v1/check" -> (
    match Protocol.check_request_of_body req.Http.body with
    | Error msg ->
      Obs.incr bad_request_c;
      answer (error_reply ~code:Protocol.Bad_request_error msg)
    | Ok creq ->
      admit_sync t conn ctx ~close (fun ~budget:_ -> handle_check t ctx creq))
  | "GET", p when job_path p <> None ->
    answer
      (phase ctx "render" (fun () ->
           job_status t ctx (Option.get (job_path p))))
  | "DELETE", p when job_path p <> None ->
    answer (job_cancel t (Option.get (job_path p)))
  | meth, p
    when List.mem p
           [
             "/healthz"; "/v1/metrics"; "/metrics"; "/v1/debug/requests";
             "/v1/solve"; "/v1/check";
           ]
         || job_path p <> None ->
    (* a real endpoint spoken to with the wrong verb *)
    Obs.incr bad_request_c;
    answer
      (error_reply ~code:Protocol.Method_not_allowed
         (Printf.sprintf "method %s not supported on %s" meth p))
  | (("GET" | "POST" | "DELETE") as meth), target ->
    Obs.incr bad_request_c;
    answer
      (error_reply ~code:Protocol.Not_found
         (Printf.sprintf "no such endpoint: %s %s" meth target))
  | meth, _ ->
    Obs.incr bad_request_c;
    answer
      (error_reply ~code:Protocol.Method_not_allowed
         (Printf.sprintf "method %s not supported" meth))

(* Serve one kept-alive connection to completion: read, route, answer,
   repeat — until the client closes or asks to ([Connection: close]),
   the idle timeout expires, the per-connection request budget runs
   out, or the server starts draining. Framing errors answer once with
   [Connection: close] (the byte stream is no longer trustworthy);
   protocol-level errors (bad JSON, 404s) keep the connection — the
   framing was sound. *)
let serve_connection t conn =
  let rec loop served =
    if Atomic.get t.stopping then ()
    else
      match
        Http.read_request ~max_body:t.cfg.max_body
          ~idle_timeout_ms:t.cfg.idle_timeout_ms
          ~read_timeout_ms:t.cfg.read_timeout_ms conn
      with
      | Error (Http.Idle | Http.Closed) -> ()
      | Error (Http.Bad_request msg) ->
        Obs.incr bad_request_c;
        complete t (make_ctx ~endpoint:"-" ()) conn ~close:true
          (error_reply ~code:Protocol.Bad_request_error msg)
      | Error (Http.Payload_too_large { limit }) ->
        Obs.incr bad_request_c;
        complete t (make_ctx ~endpoint:"-" ()) conn ~close:true
          (error_reply ~code:Protocol.Payload_too_large_error
             (Printf.sprintf "request body exceeds %d bytes" limit))
      | Error Http.Timeout ->
        Obs.incr bad_request_c;
        complete t (make_ctx ~endpoint:"-" ()) conn ~close:true
          (error_reply ~code:Protocol.Request_timeout
             "timed out reading request")
      | Ok req ->
        let served = served + 1 in
        let close =
          Http.wants_close req
          || served >= t.cfg.max_conn_requests
          || Atomic.get t.stopping
        in
        route t conn ~close req;
        if not close then loop served
  in
  loop 0

let spawn_connection t fd =
  (* answers on a kept-alive socket must not wait out Nagle against the
     client's delayed ACK *)
  (try Unix.setsockopt fd TCP_NODELAY true with Unix.Unix_error _ -> ());
  Obs.incr conn_accepted_c;
  Atomic.incr t.conns;
  Obs.set_gauge conns_g (float_of_int (Atomic.get t.conns));
  let token = Atomic.fetch_and_add t.conn_token 1 in
  let body () =
    Fun.protect
      ~finally:(fun () ->
        close_quietly fd;
        Mutex.lock t.conn_lock;
        Hashtbl.remove t.live token;
        Mutex.unlock t.conn_lock;
        Atomic.decr t.conns;
        Obs.set_gauge conns_g (float_of_int (Atomic.get t.conns)))
      (fun () ->
        try serve_connection t (Http.conn fd)
        with exn ->
          (* defensive: no single connection may kill its thread
             silently — answer if the socket still works, then drop *)
          try
            Http.write_response
              ~headers:(("x-request-id", Ulid.gen ()) :: json_headers)
              fd ~status:500
              (Protocol.error_body ~code:Protocol.Internal
                 (Printexc.to_string exn))
          with _ -> ())
  in
  (* holding the lock across create+insert: the thread's own removal
     (in its [finally]) blocks until the entry exists *)
  Mutex.lock t.conn_lock;
  let th = Thread.create body () in
  Hashtbl.replace t.live token (fd, th);
  Mutex.unlock t.conn_lock

let run t =
  Log.info "serve.started"
    ~fields:
      [
        ("port", Json.Int t.bound_port);
        ("workers", Json.Int t.cfg.workers);
        ("queue_depth", Json.Int t.cfg.queue_depth);
        ("admission", Json.String (Dispatch.mode_name t.cfg.admission));
      ];
  let rec loop () =
    if not (Atomic.get t.stopping) then
      match Unix.accept t.listen_fd with
      | fd, _ ->
        if Atomic.get t.conns >= t.cfg.max_connections then begin
          Obs.incr conn_rejected_c;
          (try
             Http.write_response ~headers:json_headers fd ~status:503
               (Protocol.error_body ~code:Protocol.Connections_full
                  "connection limit reached, retry later")
           with _ -> ());
          close_quietly fd
        end
        else spawn_connection t fd;
        loop ()
      | exception Unix.Unix_error (EINTR, _, _) -> loop ()
      | exception Unix.Unix_error (ECONNABORTED, _, _) -> loop ()
      | exception Unix.Unix_error ((EINVAL | EBADF), _, _)
        when Atomic.get t.stopping ->
        (* [stop] shut the listener down under us — the normal exit *)
        ()
  in
  loop ();
  (* Drain. Wake connection threads parked in reads (a kept-alive
     client may otherwise hold its thread until the idle timeout), then
     join them — each finishes its in-flight request first, because the
     dispatch workers are still alive. Only then retire the workers:
     queued async jobs run to completion before shutdown finishes. *)
  Mutex.lock t.conn_lock;
  let threads =
    Hashtbl.fold
      (fun _ (fd, th) acc ->
        (try Unix.shutdown fd SHUTDOWN_RECEIVE with Unix.Unix_error _ -> ());
        th :: acc)
      t.live []
  in
  Mutex.unlock t.conn_lock;
  List.iter Thread.join threads;
  Dispatch.shutdown t.dispatch;
  close_quietly t.listen_fd;
  Log.info "serve.stopped"
    ~fields:[ ("uptime_ms", Json.Float (uptime_ms t)) ]

let stop t =
  if not (Atomic.exchange t.stopping true) then
    (* wakes a blocked [accept] (EINVAL on Linux) — closing the fd alone
       does not reliably do that *)
    try Unix.shutdown t.listen_fd SHUTDOWN_ALL
    with Unix.Unix_error _ -> ()
