(* Deadline-aware worker dispatch for the serving stack: a bounded team
   of worker domains draining a priority queue of erased tasks.

   Under [Edf] (the default) the queue is ordered earliest-deadline-
   first: a task admitted with a budget sorts by its absolute deadline,
   a task without one sorts after every deadlined task, and equal keys
   fall back to admission order — so a short-budget solve admitted
   behind a long p3 sweep overtakes it at the queue instead of burning
   its whole budget waiting. [Fifo] ignores deadlines entirely (the
   pre-v2 behaviour, kept selectable so `bench-serve` can measure the
   difference).

   The heap is a plain binary min-heap under the pool mutex; admission
   rates are HTTP-request-shaped (thousands per second at most), so a
   lock here is far below the noise of the solves being dispatched. *)

module Obs = Soctest_obs.Obs

type mode = Fifo | Edf

let mode_of_string = function
  | "fifo" -> Some Fifo
  | "edf" -> Some Edf
  | _ -> None

let mode_name = function Fifo -> "fifo" | Edf -> "edf"

type task = {
  deadline : float;  (* absolute monotonic ms; [infinity] = no budget *)
  seq : int;  (* admission order: the FIFO key and the EDF tie-break *)
  run : unit -> unit;
}

let queued_g = Obs.gauge "serve.dispatch.queued"

type t = {
  lock : Mutex.t;
  work_available : Condition.t;
  mutable heap : task array;  (* slots [0, size) live *)
  mutable size : int;
  mutable seq : int;
  mutable stop : bool;
  mutable workers : unit Domain.t array;
  mode : mode;
  jobs : int;
}

let mode t = t.mode
let jobs t = t.jobs

(* ------------------------------------------------------------------ *)
(* heap plumbing (caller holds the lock) *)

let precedes t (a : task) (b : task) =
  match t.mode with
  | Fifo -> a.seq < b.seq
  | Edf -> a.deadline < b.deadline || (a.deadline = b.deadline && a.seq < b.seq)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if precedes t t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < t.size && precedes t t.heap.(l) t.heap.(!best) then best := l;
  if r < t.size && precedes t t.heap.(r) t.heap.(!best) then best := r;
  if !best <> i then begin
    swap t i !best;
    sift_down t !best
  end

let dummy_task = { deadline = infinity; seq = -1; run = ignore }

let push t task =
  if t.size = Array.length t.heap then begin
    let grown = Array.make (max 16 (2 * t.size)) dummy_task in
    Array.blit t.heap 0 grown 0 t.size;
    t.heap <- grown
  end;
  t.heap.(t.size) <- task;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  let top = t.heap.(0) in
  t.size <- t.size - 1;
  t.heap.(0) <- t.heap.(t.size);
  t.heap.(t.size) <- dummy_task;  (* drop the closure for the GC *)
  if t.size > 0 then sift_down t 0;
  top

(* ------------------------------------------------------------------ *)

let worker t =
  let rec loop () =
    Mutex.lock t.lock;
    while t.size = 0 && not t.stop do
      Condition.wait t.work_available t.lock
    done;
    if t.size = 0 then Mutex.unlock t.lock
      (* stop && empty: drain finished, exit *)
    else begin
      let task = pop t in
      Obs.set_gauge queued_g (float_of_int t.size);
      Mutex.unlock t.lock;
      (* fire-and-forget: the task owns its error handling; an escaped
         exception must not kill the worker domain *)
      (try task.run () with _ -> ());
      loop ()
    end
  in
  loop ()

let create ?(mode = Edf) ~jobs () =
  if jobs < 1 then invalid_arg "Dispatch.create: jobs must be >= 1";
  let t =
    {
      lock = Mutex.create ();
      work_available = Condition.create ();
      heap = Array.make 16 dummy_task;
      size = 0;
      seq = 0;
      stop = false;
      workers = [||];
      mode;
      jobs;
    }
  in
  t.workers <- Array.init jobs (fun _ -> Domain.spawn (fun () -> worker t));
  t

let submit t ?(deadline = infinity) run =
  Mutex.lock t.lock;
  if t.stop then begin
    Mutex.unlock t.lock;
    invalid_arg "Dispatch.submit: dispatcher is shut down"
  end;
  let task = { deadline; seq = t.seq; run } in
  t.seq <- t.seq + 1;
  push t task;
  Obs.set_gauge queued_g (float_of_int t.size);
  Condition.signal t.work_available;
  Mutex.unlock t.lock

let queued t =
  Mutex.lock t.lock;
  let n = t.size in
  Mutex.unlock t.lock;
  n

let shutdown t =
  Mutex.lock t.lock;
  if t.stop then Mutex.unlock t.lock
  else begin
    t.stop <- true;
    Condition.broadcast t.work_available;
    Mutex.unlock t.lock;
    Array.iter Domain.join t.workers
  end
