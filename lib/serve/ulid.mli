(** ULID-style request identifiers.

    26 characters of Crockford base32: a 48-bit millisecond wall-clock
    timestamp followed by 80 bits of per-domain randomness. Sortable by
    mint time, unique without coordination, and safe to log or put in
    an HTTP header unquoted. *)

val gen : unit -> string
(** Mint a fresh id. Lock-free: the random state is domain-local. *)

val is_valid : string -> bool
(** True when [s] is 26 Crockford base32 characters — what the server
    accepts as an inbound [x-request-id] before echoing it. *)
