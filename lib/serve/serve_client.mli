(** Blocking HTTP client for the scheduling service — what the
    [soctest bench-serve] load generator, the serve smoke tests and the
    unit tests speak. Not a general HTTP client: loopback-oriented, no
    redirects, no chunked transfer, no TLS.

    A {!t} holds one kept-alive connection and reuses it transparently
    across {!call}s: responses are [Content-Length]-framed, a
    [Connection: close] from the server drops the cached socket, and a
    kept-alive socket the server quietly closed between requests (idle
    timeout, per-connection request budget) is retried {e once} on a
    fresh connection. A failure on a freshly-connected socket is never
    retried — the server really is unreachable, and a request that
    reached a live server is answered, not dropped, so the retry cannot
    double-execute.

    Transport and framing failures raise {!Error} (a typed variant, not
    a stringly [Failure]); HTTP error {e statuses} are returned in the
    {!response} — only the async helpers, which must interpret the
    status to proceed, raise [Http]. *)

type response = {
  status : int;
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

type error =
  | Timeout  (** socket timeout (send, receive, or {!await_job}) *)
  | Http of int * string
      (** a helper needed success and got this status/body *)
  | Decode of string  (** malformed response framing or JSON *)
  | Conn of exn  (** connect/read/write failed at the OS level *)

exception Error of error
(** Registered with [Printexc] — prints as ["Serve_client: ..."]. *)

val error_message : error -> string

(** {1 Reusable connections} *)

type t

val connect : ?host:string -> ?timeout_ms:float -> port:int -> unit -> t
(** A client for [host:port] (default 127.0.0.1, 30 s timeouts). The
    TCP connection is established lazily on first {!call}. *)

val close : t -> unit
(** Drop the cached connection (idempotent). The client remains usable;
    the next {!call} reconnects. *)

val call :
  t ->
  ?meth:string ->
  ?body:string ->
  ?headers:(string * string) list ->
  ?timeout_ms:float ->
  string ->
  response
(** One request over the cached connection (reconnecting and retrying
    once if it went stale). [meth] defaults to [GET], or [POST] when
    [body] is given; [timeout_ms] overrides the client default for this
    call.
    @raise Error on transport or framing failure. *)

val pipeline :
  t -> ?timeout_ms:float -> (string * string * string option) list ->
  response list
(** [pipeline t specs] writes every [(meth, path, body)] request in one
    batch on the kept-alive socket, then reads the responses back in
    order. A stale cached socket (nothing read yet) reconnects and
    rewrites the batch once; after the first response has arrived a
    failure propagates instead — re-sending would double-execute.
    @raise Error on transport or framing failure. *)

(** {1 One-shot convenience}

    A fresh connection per call, closed after — the serve-v1 calling
    convention, kept for callers that talk to a server once. *)

val request :
  port:int ->
  ?host:string ->
  ?meth:string ->
  ?body:string ->
  ?headers:(string * string) list ->
  ?timeout_ms:float ->
  string ->
  response

val get : port:int -> string -> response
val post : port:int -> body:string -> string -> response

val json_body : response -> Soctest_obs.Json.t
(** Parse the response body as JSON.
    @raise Error ([Decode]) when it is not valid JSON. *)

(** {1 Async jobs} *)

val solve_async : t -> body:string -> string
(** [POST /v1/solve?mode=async]; returns the job id from the 202.
    @raise Error ([Http]) on any other status. *)

val job_status : t -> string -> response
(** [GET /v1/jobs/<id>] — a status document while queued/running, the
    replayed solve response once done. *)

val cancel_job : t -> string -> response
(** [DELETE /v1/jobs/<id>]. *)

val await_job : ?poll_ms:float -> ?timeout_ms:float -> t -> string -> response
(** Poll {!job_status} (every [poll_ms], default 20) until the job
    leaves queued/running, and return that final response — the
    replayed result, a cancelled status document, or a 404 if the job
    expired mid-poll.
    @raise Error ([Timeout]) after [timeout_ms] (default 30 s). *)
