(** Minimal blocking HTTP client for the scheduling service — what the
    [soctest bench-serve] load generator, the serve smoke test and the
    unit tests speak. Connects to loopback, writes one request, reads to
    EOF (the server always closes), parses the response. Not a general
    HTTP client: no redirects, no keep-alive, no TLS. *)

type response = {
  status : int;
  headers : (string * string) list;  (** names lowercased *)
  body : string;
}

val request :
  port:int ->
  ?host:string ->
  ?meth:string ->
  ?body:string ->
  ?headers:(string * string) list ->
  ?timeout_ms:float ->
  string ->
  response
(** [request ~port path] performs [meth] (default [GET], [POST] when
    [body] is given) against [host] (default 127.0.0.1). [headers] are
    extra request headers (e.g. an inbound [x-request-id] to be echoed
    back). [timeout_ms] (default 30 s) arms both [SO_RCVTIMEO] and
    [SO_SNDTIMEO].
    @raise Failure on connection refusal, timeout or a malformed
    response — callers are tests and benchmarks, which want to die
    loudly. *)

val get : port:int -> string -> response
val post : port:int -> body:string -> string -> response

val json_body : response -> Soctest_obs.Json.t
(** Parse the response body as JSON.
    @raise Failure when it is not valid JSON. *)
