module Json = Soctest_obs.Json
module Soc_def = Soctest_soc.Soc_def
module Benchmarks = Soctest_soc.Benchmarks
module Soc_parser = Soctest_soc.Soc_parser
module Schedule_io = Soctest_tam.Schedule_io
module Engine = Soctest_engine.Engine
module Optimizer = Soctest_core.Optimizer
module Audit = Soctest_check.Audit

type problem = P1 | P2 | P3
type strategy = Point | Grid | Rectpack | Rectpack_diag

type solve_request = {
  soc : Soc_def.t;
  soc_source : string;
  tam_width : int;
  problem : problem;
  strategy : strategy;
  budget_ms : float option;
  power_limit : int option;
  preempt : int option;
  wmax : int;
  max_width : int option;
  stall_ms : int;
}

type check_request = {
  soc : Soc_def.t;
  soc_source : string;
  schedule : Soctest_tam.Schedule.t;
  power_limit : int option;
  preempt : int option;
  wmax : int;
  partial : bool;
}

(* ------------------------------------------------------------------ *)
(* decoding *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

let field obj key = Json.member key obj

let int_field ?default obj key =
  match field obj key with
  | None -> (
    match default with
    | Some d -> d
    | None -> bad "missing required field %S" key)
  | Some (Json.Int i) -> i
  | Some _ -> bad "field %S must be an integer" key

let opt_int_field obj key =
  match field obj key with
  | None | Some Json.Null -> None
  | Some (Json.Int i) -> Some i
  | Some _ -> bad "field %S must be an integer" key

let opt_number_field obj key =
  match field obj key with
  | None | Some Json.Null -> None
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | Some _ -> bad "field %S must be a number" key

let bool_field ~default obj key =
  match field obj key with
  | None | Some Json.Null -> default
  | Some (Json.Bool b) -> b
  | Some _ -> bad "field %S must be a boolean" key

let string_field obj key =
  match field obj key with
  | None | Some Json.Null -> None
  | Some (Json.String s) -> Some s
  | Some _ -> bad "field %S must be a string" key

let soc_of obj =
  match (string_field obj "soc", string_field obj "soc_text") with
  | Some _, Some _ -> bad "give either \"soc\" or \"soc_text\", not both"
  | Some name, None -> (
    match Benchmarks.by_name name with
    | Some soc -> (soc, name)
    | None ->
      bad "unknown benchmark %S (d695, p22810, p34392, p93791, mini4)" name)
  | None, Some text -> (
    match Soc_parser.parse_result text with
    | Ok soc -> (soc, "inline")
    | Error e -> bad "soc_text: %s" (Format.asprintf "%a" Soc_parser.pp_error e))
  | None, None -> bad "missing \"soc\" (benchmark name) or \"soc_text\""

let parse_obj body =
  match Json.parse body with
  | Error msg -> bad "%s" msg
  | Ok (Json.Obj _ as obj) -> obj
  | Ok _ -> bad "request body must be a JSON object"

let decode f body = try Ok (f (parse_obj body)) with Bad msg -> Error msg

let solve_request_of_body =
  decode @@ fun obj ->
  let soc, soc_source = soc_of obj in
  let tam_width = int_field obj "width" in
  if tam_width < 1 then bad "\"width\" must be >= 1";
  let problem =
    match string_field obj "problem" with
    | None | Some "p2" -> P2
    | Some "p1" -> P1
    | Some "p3" -> P3
    | Some p -> bad "unknown problem %S (p1, p2 or p3)" p
  in
  let strategy =
    match string_field obj "strategy" with
    | None | Some "point" -> Point
    | Some "grid" -> Grid
    | Some "rectpack" -> Rectpack
    | Some "rectpack-diagonal" -> Rectpack_diag
    | Some s ->
      bad "unknown strategy %S (point, grid, rectpack or rectpack-diagonal)"
        s
  in
  let budget_ms = opt_number_field obj "budget_ms" in
  (match budget_ms with
  | Some ms when ms < 0. -> bad "\"budget_ms\" must be >= 0"
  | _ -> ());
  let power_limit = opt_int_field obj "power_limit" in
  (match power_limit with
  | Some p when p < 1 -> bad "\"power_limit\" must be >= 1"
  | _ -> ());
  let preempt = opt_int_field obj "preempt" in
  (match preempt with
  | Some p when p < 0 -> bad "\"preempt\" must be >= 0"
  | _ -> ());
  let wmax = int_field ~default:64 obj "wmax" in
  if wmax < 1 then bad "\"wmax\" must be >= 1";
  let max_width = opt_int_field obj "max_width" in
  (match max_width with
  | Some w when w < 1 -> bad "\"max_width\" must be >= 1"
  | _ -> ());
  let stall_ms = int_field ~default:0 obj "stall_ms" in
  if stall_ms < 0 then bad "\"stall_ms\" must be >= 0";
  {
    soc;
    soc_source;
    tam_width;
    problem;
    strategy;
    budget_ms;
    power_limit;
    preempt;
    wmax;
    max_width;
    stall_ms;
  }

let check_request_of_body =
  decode @@ fun obj ->
  let soc, soc_source = soc_of obj in
  let text =
    match string_field obj "schedule_text" with
    | Some t -> t
    | None -> bad "missing \"schedule_text\""
  in
  let schedule =
    match Schedule_io.of_string text with
    | sched -> sched
    | exception Schedule_io.Parse_error e ->
      bad "schedule_text: %s" (Format.asprintf "%a" Schedule_io.pp_error e)
  in
  let power_limit = opt_int_field obj "power_limit" in
  (match power_limit with
  | Some p when p < 1 -> bad "\"power_limit\" must be >= 1"
  | _ -> ());
  let preempt = opt_int_field obj "preempt" in
  let wmax = int_field ~default:64 obj "wmax" in
  if wmax < 1 then bad "\"wmax\" must be >= 1";
  let partial = bool_field ~default:false obj "partial" in
  { soc; soc_source; schedule; power_limit; preempt; wmax; partial }

(* ------------------------------------------------------------------ *)
(* rendering *)

let json_of_report (r : Audit.report) =
  Json.Obj
    [
      ("clean", Json.Bool (Audit.ok r));
      ("checks_run", Json.Int r.Audit.checks_run);
      ("cores_audited", Json.Int r.Audit.cores_audited);
      ("slices_audited", Json.Int r.Audit.slices_audited);
      ("makespan", Json.Int r.Audit.makespan);
      ( "violations",
        Json.List
          (List.map
             (fun (v : Audit.violation) ->
               Json.Obj
                 [
                   ("check", Json.String (Audit.check_name v.Audit.check));
                   ("detail", Json.String v.Audit.detail);
                 ])
             r.Audit.violations) );
    ]

let json_of_outcome ?lower_bound ~soc (o : Engine.outcome) =
  let r = o.Engine.result in
  Json.Obj
    ([
      ( "status",
        Json.String
          (match o.Engine.status with
          | Engine.Complete -> "complete"
          | Engine.Deadline -> "deadline") );
      ("testing_time", Json.Int r.Optimizer.testing_time);
    ]
    @ (match lower_bound with
      | None -> []
      | Some lb ->
        [
          ("lower_bound", Json.Int lb);
          ( "gap_pct",
            Json.Float
              (if lb > 0 then
                 100.
                 *. float_of_int (r.Optimizer.testing_time - lb)
                 /. float_of_int lb
               else 0.) );
        ])
    @ [
      ("evaluations", Json.Int o.Engine.evaluations);
      ( "widths",
        Json.List
          (List.map
             (fun (id, w) ->
               Json.Obj
                 [
                   ("core", Json.Int id);
                   ( "name",
                     Json.String
                       (Soc_def.core soc id).Soctest_soc.Core_def.name );
                   ("width", Json.Int w);
                 ])
             r.Optimizer.widths) );
      ( "preemptions",
        Json.List
          (List.map
             (fun (id, p) ->
               Json.Obj [ ("core", Json.Int id); ("count", Json.Int p) ])
             r.Optimizer.preemptions) );
      ("schedule_text", Json.String (Schedule_io.to_string r.Optimizer.schedule));
      ( "cache",
        Json.Obj
          [
            ("pareto_computed", Json.Int o.Engine.stats.Engine.pareto_computed);
            ("pareto_cached", Json.Int o.Engine.stats.Engine.pareto_cached);
            ("eval_computed", Json.Int o.Engine.stats.Engine.eval_computed);
            ("eval_cached", Json.Int o.Engine.stats.Engine.eval_cached);
            ("eval_deduped", Json.Int o.Engine.stats.Engine.eval_deduped);
            ( "eval_from_store",
              Json.Int o.Engine.stats.Engine.eval_from_store );
          ] );
      ("solve_ms", Json.Float o.Engine.stats.Engine.elapsed_ms);
      ( "store_probe_ms",
        Json.Float o.Engine.stats.Engine.store_probe_ms );
      ("eval_solve_ms", Json.Float o.Engine.stats.Engine.eval_solve_ms);
    ])

(* ------------------------------------------------------------------ *)
(* error taxonomy *)

type error_code =
  | Bad_request_error
  | Payload_too_large_error
  | Request_timeout
  | Queue_full
  | Jobs_full
  | Connections_full
  | Infeasible
  | Not_found
  | Method_not_allowed
  | Conflict
  | Shutting_down
  | Internal

let error_code_name = function
  | Bad_request_error -> "bad_request"
  | Payload_too_large_error -> "payload_too_large"
  | Request_timeout -> "request_timeout"
  | Queue_full -> "queue_full"
  | Jobs_full -> "jobs_full"
  | Connections_full -> "connections_full"
  | Infeasible -> "infeasible"
  | Not_found -> "not_found"
  | Method_not_allowed -> "method_not_allowed"
  | Conflict -> "conflict"
  | Shutting_down -> "shutting_down"
  | Internal -> "internal"

let error_status = function
  | Bad_request_error -> 400
  | Payload_too_large_error -> 413
  | Request_timeout -> 408
  | Queue_full -> 429
  | Jobs_full -> 503
  | Connections_full -> 503
  | Infeasible -> 422
  | Not_found -> 404
  | Method_not_allowed -> 405
  | Conflict -> 409
  | Shutting_down -> 503
  | Internal -> 500

let error_body ?code ?detail msg =
  let fields = [ ("error", Json.String msg) ] in
  let fields =
    match code with
    | None -> fields
    | Some c -> fields @ [ ("code", Json.String (error_code_name c)) ]
  in
  let fields =
    match detail with
    | None -> fields
    | Some (Json.Obj extra) -> fields @ extra
    | Some v -> fields @ [ ("detail", v) ]
  in
  Json.to_string (Json.Obj fields)

(* ------------------------------------------------------------------ *)
(* async job rendering *)

let job_url id = "/v1/jobs/" ^ id

let json_of_job (v : Jobs.view) =
  Json.Obj
    [
      ("id", Json.String v.Jobs.v_id);
      ("state", Json.String v.Jobs.v_state);
      ("request_id", Json.String v.Jobs.v_request_id);
      ("age_ms", Json.Float v.Jobs.v_age_ms);
      ("wait_ms", Json.Float v.Jobs.v_wait_ms);
      ( "run_ms",
        match v.Jobs.v_run_ms with Some ms -> Json.Float ms | None -> Json.Null
      );
    ]

let job_accepted_body ~id =
  Json.to_string
    (Json.Obj
       [
         ("job_id", Json.String id);
         ("state", Json.String "queued");
         ("status_url", Json.String (job_url id));
       ])
