(** Minimal HTTP/1.1 codec over [Unix] file descriptors — just enough
    protocol for the scheduling service: one request per connection
    (the server always answers [Connection: close]), methods GET/POST,
    [Content-Length] bodies, no chunked transfer, no keep-alive, no
    TLS. Pure stdlib; the framing is deliberately small so it can be
    audited like the rest of the stack.

    Reading is defensive: header section and body sizes are bounded,
    socket timeouts surface as {!Timeout} (arm them with
    [Unix.setsockopt_float fd SO_RCVTIMEO]), and a peer that closes
    mid-request yields {!Closed} — the server never blocks forever on a
    slow or dead client. *)

type request = {
  meth : string;  (** uppercased, e.g. ["POST"] *)
  target : string;  (** origin-form request target, e.g. ["/v1/solve"] *)
  version : string;  (** ["HTTP/1.1"] (or 1.0) *)
  headers : (string * string) list;
      (** names lowercased, values trimmed, in arrival order *)
  body : string;
}

type error =
  | Bad_request of string  (** malformed framing; answer 400 *)
  | Payload_too_large of { limit : int }  (** body over limit; answer 413 *)
  | Timeout  (** socket read timed out; answer 408 *)
  | Closed  (** peer vanished before a full request; no answer possible *)

val max_header_bytes : int
(** Fixed 16 KiB cap on the request line + headers. *)

val default_max_body : int
(** 1 MiB — the [?max_body] default here and the server's default cap. *)

val read_request :
  ?max_body:int -> Unix.file_descr -> (request, error) result
(** Read and parse one request from the socket. The header section is
    capped at 16 KiB, the body at [max_body] (default 1 MiB). Never
    raises on peer behaviour (resets and timeouts come back as
    {!error}); [Unix_error]s that are not peer-related (e.g. [EBADF])
    do propagate. *)

val header : request -> string -> string option
(** Case-insensitive header lookup (first match). *)

val split_target : string -> string * (string * string) list
(** [split_target "/v1/debug/requests?limit=5"] is
    [("/v1/debug/requests", [("limit", "5")])] — the origin-form path
    and its query parameters (no percent-decoding; the service's
    parameters are plain tokens). A missing [=] yields an empty
    value. *)

(** {1 Parsing helpers shared with {!Serve_client}} *)

val find_header_end : string -> int option
(** Index just past the blank line terminating a header section
    ([\r\n\r\n] or bare [\n\n]), if present. *)

val header_lines : string -> string list
(** Split a header section at its (CR)LF line breaks, dropping the
    trailing [\r] of each line and empty lines. *)

val status_reason : int -> string
(** Canonical reason phrase, e.g. [429 -> "Too Many Requests"]. *)

val response_string :
  ?headers:(string * string) list -> status:int -> string -> string
(** [response_string ~status body] serializes a full response: status
    line, [Content-Length], [Connection: close], extra [headers], blank
    line, body. JSON bodies should add
    [("Content-Type", "application/json")]. *)

val write_response :
  ?headers:(string * string) list ->
  Unix.file_descr ->
  status:int ->
  string ->
  unit
(** Write {!response_string} to the socket. A peer that already hung up
    ([EPIPE], [ECONNRESET]) is ignored — the response is best-effort by
    then. *)
