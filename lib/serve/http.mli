(** Minimal HTTP/1.1 codec over [Unix] file descriptors — just enough
    protocol for the scheduling service: GET/POST/DELETE with
    [Content-Length] bodies, persistent (keep-alive) connections with
    pipelining, no chunked transfer, no TLS. Pure stdlib; the framing
    is deliberately small so it can be audited like the rest of the
    stack.

    A {!conn} wraps the socket with a residual buffer: bytes a read
    pulled in past the end of one request (a pipelining client batches
    several requests per send) are retained verbatim and framed as the
    next request — nothing is dropped between requests on a kept-alive
    socket.

    Reading is defensive: header section and body sizes are bounded,
    mid-request socket stalls surface as {!Timeout} (answer 408), a
    quiet kept-alive socket surfaces as {!Idle} (close without an
    answer), and a peer that closes mid-request yields {!Closed} — the
    server never blocks forever on a slow or dead client. *)

type request = {
  meth : string;  (** uppercased, e.g. ["POST"] *)
  target : string;  (** origin-form request target, e.g. ["/v1/solve"] *)
  version : string;  (** ["HTTP/1.1"] (or 1.0) *)
  headers : (string * string) list;
      (** names lowercased, values trimmed, in arrival order *)
  body : string;
}

type error =
  | Bad_request of string  (** malformed framing; answer 400 *)
  | Payload_too_large of { limit : int }  (** body over limit; answer 413 *)
  | Timeout  (** stalled mid-request; answer 408 *)
  | Idle
      (** timed out with no byte of a next request — the quiet end of a
          kept-alive connection; close without answering *)
  | Closed  (** peer vanished before a full request; no answer possible *)

val max_header_bytes : int
(** Fixed 16 KiB cap on the request line + headers. *)

val default_max_body : int
(** 1 MiB — the [?max_body] default here and the server's default cap. *)

type conn
(** One client connection: the socket plus the residual bytes read past
    the previous request's end. *)

val conn : Unix.file_descr -> conn
val fd : conn -> Unix.file_descr

val pending : conn -> bool
(** Whether pipelined bytes are already buffered — the next
    {!read_request} will start from them without touching the socket. *)

val read_request :
  ?max_body:int ->
  ?idle_timeout_ms:float ->
  ?read_timeout_ms:float ->
  conn ->
  (request, error) result
(** Read and parse one request from the connection, starting from its
    residual buffer. The header section is capped at 16 KiB, the body
    at [max_body] (default 1 MiB); bytes beyond the body stay buffered
    for the next call. [idle_timeout_ms] arms [SO_RCVTIMEO] while
    waiting for the request's first byte (expiry yields {!Idle});
    [read_timeout_ms] re-arms it once the request has started arriving
    (expiry yields {!Timeout}). Never raises on peer behaviour;
    [Unix_error]s that are not peer-related (e.g. [EBADF]) do
    propagate. *)

val header : request -> string -> string option
(** Case-insensitive header lookup (first match). *)

val wants_close : request -> bool
(** RFC 7230 persistence: true on [Connection: close], or on HTTP/1.0
    without [Connection: keep-alive]. *)

val split_target : string -> string * (string * string) list
(** [split_target "/v1/debug/requests?limit=5"] is
    [("/v1/debug/requests", [("limit", "5")])] — the origin-form path
    and its query parameters (no percent-decoding; the service's
    parameters are plain tokens). A missing [=] yields an empty
    value. *)

(** {1 Parsing helpers shared with {!Serve_client}} *)

val find_header_end : string -> int option
(** Index just past the blank line terminating a header section
    ([\r\n\r\n] or bare [\n\n]), if present. *)

val header_lines : string -> string list
(** Split a header section at its (CR)LF line breaks, dropping the
    trailing [\r] of each line and empty lines. *)

val status_reason : int -> string
(** Canonical reason phrase, e.g. [429 -> "Too Many Requests"]. *)

val response_string :
  ?headers:(string * string) list ->
  ?close:bool ->
  status:int ->
  string ->
  string
(** [response_string ~status body] serializes a full response: status
    line, [Content-Length], [Connection: close] (or [keep-alive] when
    [~close:false]), extra [headers], blank line, body. JSON bodies
    should add [("Content-Type", "application/json")]. *)

val write_response :
  ?headers:(string * string) list ->
  ?close:bool ->
  Unix.file_descr ->
  status:int ->
  string ->
  unit
(** Write {!response_string} to the socket. A peer that already hung up
    ([EPIPE], [ECONNRESET]) is ignored — the response is best-effort by
    then. *)
