(** Bounded async job store: the server-side half of
    [POST /v1/solve?mode=async].

    A job holds an admission slot from submission to finish; its
    rendered response is parked here until the client collects it via
    [GET /v1/jobs/<id>] or its TTL expires. The store is bounded by
    [capacity] (a full store refuses new jobs) and sweeps expired
    finished entries lazily on every operation. Cancellation is
    cooperative through the job's {!Soctest_core.Budget}.

    All operations are thread-safe (one internal lock); entries are
    never exposed mutable — callers observe jobs through {!view}. *)

type outcome = { status : int; body : string }
(** The rendered HTTP response the sync path would have written. *)

type state = Queued | Running | Done of outcome | Cancelled

val state_name : state -> string

type entry
(** Live handle used by the worker that owns the job's execution. *)

type t

val default_capacity : int
(** 256 retained jobs. *)

val default_ttl_ms : float
(** 5 minutes of post-finish retention. *)

val create : ?capacity:int -> ?ttl_ms:float -> unit -> t

val capacity : t -> int
val ttl_ms : t -> float

val submit :
  t ->
  id:string ->
  request_id:string ->
  budget:Soctest_core.Budget.t ->
  (entry, [ `Full ]) result
(** Register a queued job. [`Full] when the store is at capacity even
    after evicting expired and oldest-finished entries — the caller
    should answer 503. *)

val start : t -> entry -> bool
(** Queued -> Running, stamping the start time. [false] if the job was
    cancelled (or otherwise finished) before a worker picked it up —
    the worker must skip the solve and release its admission slot. *)

val finish : t -> entry -> outcome -> unit
(** Running -> Done (or Cancelled, when a cancel landed mid-solve — the
    degraded result is discarded). No-op in any other state. *)

val cancel :
  t ->
  string ->
  [ `Cancelled  (** was queued; finished immediately *)
  | `Cancelling  (** running; budget cancelled, solve winding down *)
  | `Already_finished of string  (** terminal; argument is the state *)
  | `Unknown ]
(** Cancel by id. Cooperative for running jobs: the engine polls the
    budget between evaluations. *)

(** {1 Introspection} *)

type view = {
  v_id : string;
  v_request_id : string;
  v_state : string;  (** {!state_name} of the state at observation *)
  v_outcome : outcome option;  (** [Some] iff state is done *)
  v_age_ms : float;  (** since submission *)
  v_wait_ms : float;  (** submission to solve start (or to now/finish) *)
  v_run_ms : float option;  (** solve start to finish (or to now) *)
}

val find : t -> string -> view option
(** Consistent snapshot of one job; [None] for unknown or TTL-evicted
    ids. *)

type stats = {
  s_queued : int;
  s_running : int;
  s_done : int;
  s_cancelled : int;
  s_retained : int;  (** total entries currently held *)
  s_capacity : int;
}

val stats : t -> stats
