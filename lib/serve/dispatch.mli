(** Deadline-aware worker dispatch: a bounded team of worker domains
    draining a priority queue of admitted jobs.

    {!Edf} (the default) orders the queue earliest-deadline-first:
    tasks submitted with an absolute deadline run before tasks without
    one, earlier deadlines first, admission order breaking ties — so a
    short-budget request admitted behind a long p3 sweep overtakes it
    at the queue instead of burning its budget waiting. {!Fifo}
    restores strict admission order (the pre-v2 behaviour, kept
    selectable so [soctest bench-serve] can quantify the difference
    under mixed budgets).

    Same drain discipline as {!Soctest_portfolio.Pool}: tasks are
    fire-and-forget (they own their error handling), {!shutdown} lets
    queued tasks finish before joining the workers, and {!submit} after
    shutdown raises [Invalid_argument]. *)

type mode = Fifo | Edf

val mode_of_string : string -> mode option
(** ["fifo"] / ["edf"]. *)

val mode_name : mode -> string

type t

val create : ?mode:mode -> jobs:int -> unit -> t
(** Spawn [jobs] worker domains (at least 1). [mode] defaults to
    {!Edf}. *)

val submit : t -> ?deadline:float -> (unit -> unit) -> unit
(** Enqueue a task. [deadline] is the job's {e absolute} deadline in
    monotonic milliseconds ({!Soctest_obs.Clock.now_ms} base); omitted
    means no deadline — under {!Edf} such tasks run after every
    deadlined one, in admission order.
    @raise Invalid_argument after {!shutdown}. *)

val queued : t -> int
(** Tasks admitted but not yet picked up by a worker. *)

val mode : t -> mode
val jobs : t -> int

val shutdown : t -> unit
(** Stop accepting, drain the queue, join the workers. Idempotent. *)
