(* ULID-style ids: 48-bit ms timestamp + 80 random bits, Crockford
   base32. The timestamp keeps ids sortable by mint time (useful when
   eyeballing logs); the 80 random bits make collisions implausible
   without any cross-domain coordination. *)

let alphabet = "0123456789ABCDEFGHJKMNPQRSTVWXYZ"

(* Per-domain random state: [Random.State.make_self_init] mixes time,
   pid and a counter, and each domain owning its state keeps [gen]
   lock-free. *)
let rng_key : Random.State.t Domain.DLS.key =
  Domain.DLS.new_key Random.State.make_self_init

let gen () =
  let rng = Domain.DLS.get rng_key in
  let b = Bytes.create 26 in
  (* 48-bit timestamp -> 10 base32 chars (watchful of the sign bit:
     ms since epoch fits 63-bit OCaml ints for the next few millennia) *)
  let ms = Int64.of_float (Unix.gettimeofday () *. 1000.) in
  for i = 0 to 9 do
    let shift = (9 - i) * 5 in
    let idx = Int64.to_int (Int64.logand (Int64.shift_right_logical ms shift) 31L) in
    Bytes.set b i alphabet.[idx]
  done;
  (* 80 random bits -> 16 base32 chars *)
  for i = 10 to 25 do
    Bytes.set b i alphabet.[Random.State.int rng 32]
  done;
  Bytes.to_string b

let is_valid s =
  String.length s = 26
  && String.for_all
       (fun c ->
         match c with
         | '0' .. '9' -> true
         | 'A' .. 'Z' | 'a' .. 'z' ->
           (* Crockford excludes I, L, O, U (either case) *)
           let u = Char.uppercase_ascii c in
           u <> 'I' && u <> 'L' && u <> 'O' && u <> 'U'
         | _ -> false)
       s
