(** The JSON wire protocol of the scheduling service: request decoding
    (with full validation up front, so the accept loop can answer 400
    before a job is ever admitted) and response rendering. Built on
    {!Soctest_obs.Json} — no external JSON dependency.

    A [/v1/solve] body looks like

    {v
    { "soc": "d695",            // benchmark name, or "soc_text": "Soc ..."
      "width": 32,              // required TAM width W
      "problem": "p2",          // p1 | p2 (default) | p3
      "strategy": "point",      // point (default) | grid | rectpack
                                //   | rectpack-diagonal
      "budget_ms": 500,         // optional per-request deadline
      "power_limit": 100,       // optional power cap (p2/p3)
      "preempt": 2,             // optional preemption budget (p2/p3)
      "wmax": 64,               // per-core width cap (default 64)
      "max_width": 24,          // p3 only: sweep 1..max_width (default W)
      "stall_ms": 0 }           // hold a worker (admission tests, load gen)
    v}

    [p1] ignores the constraint knobs (the empty constraint set); [p3]
    sweeps widths [1..max_width] and returns the (width, time, volume)
    points instead of one schedule. *)

module Json = Soctest_obs.Json

type problem = P1 | P2 | P3

type strategy =
  | Point
  | Grid
  | Rectpack  (** plain rectangle bin packing ({!Soctest_pack.Rectpack}) *)
  | Rectpack_diag  (** diagonal-length-ordered variant *)

type solve_request = {
  soc : Soctest_soc.Soc_def.t;
  soc_source : string;  (** benchmark name or ["inline"] — for responses *)
  tam_width : int;
  problem : problem;
  strategy : strategy;
  budget_ms : float option;
  power_limit : int option;
  preempt : int option;
  wmax : int;
  max_width : int option;  (** P3 sweep bound; defaults to [tam_width] *)
  stall_ms : int;
}

type check_request = {
  soc : Soctest_soc.Soc_def.t;
  soc_source : string;
  schedule : Soctest_tam.Schedule.t;
  power_limit : int option;
  preempt : int option;
  wmax : int;
  partial : bool;  (** waive the completeness check *)
}

val solve_request_of_body : string -> (solve_request, string) result
(** Decode and validate a [/v1/solve] body: JSON shape, benchmark-name
    lookup or inline [.soc] parse, and range checks. The error string is
    ready for a 400 response. *)

val check_request_of_body : string -> (check_request, string) result
(** Decode a [/v1/check] body: [{"soc": ... | "soc_text": ...,
    "schedule_text": "Schedule ...", "power_limit"?, "preempt"?,
    "wmax"?, "partial"?}]. Schedule parse errors come back as [Error]
    (the service answers 400, never 500, on malformed input). *)

(** {1 Response rendering} *)

val json_of_report : Soctest_check.Audit.report -> Json.t
(** The audit verdict attached to every solve response: [clean],
    [checks_run], [violations] (with stable kebab-case check names). *)

val json_of_outcome :
  ?lower_bound:int ->
  soc:Soctest_soc.Soc_def.t ->
  Soctest_engine.Engine.outcome ->
  Json.t
(** Engine status, testing time, per-core widths/preemptions, the
    schedule in {!Soctest_tam.Schedule_io} text form, and cache
    statistics for this solve. When [lower_bound] is given (the server
    always passes {!Soctest_core.Lower_bound.compute_constrained}),
    [lower_bound] and [gap_pct] — how far the returned makespan sits
    above it — ride along. *)

(** {1 Error taxonomy}

    Every error response carries a machine-readable [code] alongside
    the human-readable [error] message, so clients can branch without
    string-matching messages. {!error_status} is the canonical HTTP
    status for each code — the server uses it, so code and status can
    never drift apart. *)

type error_code =
  | Bad_request_error  (** 400 — malformed framing or body *)
  | Payload_too_large_error  (** 413 *)
  | Request_timeout  (** 408 — socket stalled mid-request *)
  | Queue_full  (** 429 — admission window full; [Retry-After] rides along *)
  | Jobs_full  (** 503 — async job store at capacity *)
  | Connections_full  (** 503 — connection cap reached; retry later *)
  | Infeasible  (** 422 — the instance admits no schedule *)
  | Not_found  (** 404 — unknown endpoint or job id *)
  | Method_not_allowed  (** 405 *)
  | Conflict  (** 409 — e.g. cancelling an already-finished job *)
  | Shutting_down  (** 503 — raced with server shutdown *)
  | Internal  (** 500 *)

val error_code_name : error_code -> string
(** Stable snake_case wire name, e.g. [Queue_full -> "queue_full"]. *)

val error_status : error_code -> int

val error_body : ?code:error_code -> ?detail:Json.t -> string -> string
(** [{"error": msg, "code": code?, ...detail}] rendered compactly. *)

(** {1 Async job rendering} *)

val job_url : string -> string
(** [job_url id] is ["/v1/jobs/" ^ id]. *)

val json_of_job : Jobs.view -> Json.t
(** Status document for a job that is not (yet) done: id, state,
    originating request id, age/wait/run timings. *)

val job_accepted_body : id:string -> string
(** The 202 body of [POST /v1/solve?mode=async]: job id, initial state
    and the status URL to poll. *)
