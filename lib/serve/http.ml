type request = {
  meth : string;
  target : string;
  version : string;
  headers : (string * string) list;
  body : string;
}

type error =
  | Bad_request of string
  | Payload_too_large of { limit : int }
  | Timeout
  | Idle
  | Closed

let max_header_bytes = 16 * 1024
let default_max_body = 1024 * 1024

(* A connection carries the bytes read past the end of the previous
   request (pipelined clients batch several requests into one send), so
   framing never loses data between requests on a kept-alive socket. *)
type conn = { fd : Unix.file_descr; mutable residual : string }

let conn fd = { fd; residual = "" }
let fd c = c.fd
let pending c = String.length c.residual > 0

exception Fail of error

(* A read that maps peer misbehaviour to typed errors. [recv] on a
   socket with SO_RCVTIMEO armed fails with EAGAIN/EWOULDBLOCK on
   expiry. *)
let read_some fd buf =
  match Unix.read fd buf 0 (Bytes.length buf) with
  | 0 -> raise (Fail Closed)
  | n -> n
  | exception Unix.Unix_error ((EAGAIN | EWOULDBLOCK), _, _) ->
    raise (Fail Timeout)
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
    raise (Fail Closed)
  | exception Unix.Unix_error (EINTR, _, _) -> 0

let split_header_line line =
  match String.index_opt line ':' with
  | None -> raise (Fail (Bad_request ("malformed header line: " ^ line)))
  | Some i ->
    let name = String.lowercase_ascii (String.trim (String.sub line 0 i)) in
    let value =
      String.trim (String.sub line (i + 1) (String.length line - i - 1))
    in
    if name = "" then raise (Fail (Bad_request "empty header name"));
    (name, value)

let parse_request_line line =
  match String.split_on_char ' ' line with
  | [ meth; target; version ] when meth <> "" && target <> "" ->
    if version <> "HTTP/1.1" && version <> "HTTP/1.0" then
      raise (Fail (Bad_request ("unsupported version: " ^ version)));
    (String.uppercase_ascii meth, target, version)
  | _ -> raise (Fail (Bad_request ("malformed request line: " ^ line)))

(* Split the header section (request line + headers) at its CRLF (or
   bare-LF) line breaks. *)
let header_lines section =
  String.split_on_char '\n' section
  |> List.map (fun l ->
         let n = String.length l in
         if n > 0 && l.[n - 1] = '\r' then String.sub l 0 (n - 1) else l)
  |> List.filter (fun l -> l <> "")

let find_header_end s =
  (* index just past the first blank line, scanning for \n\r\n or \n\n *)
  let n = String.length s in
  let rec scan i =
    if i >= n then None
    else if s.[i] = '\n' then
      if i + 1 < n && s.[i + 1] = '\n' then Some (i + 2)
      else if i + 2 < n && s.[i + 1] = '\r' && s.[i + 2] = '\n' then
        Some (i + 3)
      else scan (i + 1)
    else scan (i + 1)
  in
  scan 0

let arm_timeout fd ms =
  match ms with
  | None -> ()
  | Some ms -> (
    try Unix.setsockopt_float fd SO_RCVTIMEO (ms /. 1000.)
    with Unix.Unix_error _ -> ())

let read_request ?(max_body = default_max_body) ?idle_timeout_ms
    ?read_timeout_ms conn =
  let buf = Bytes.create 8192 in
  let acc = Buffer.create 1024 in
  Buffer.add_string acc conn.residual;
  conn.residual <- "";
  (* Waiting for the request's first byte runs under the (long) idle
     timeout; once the request has started arriving, mid-request stalls
     get the (short) read timeout. A timeout before any byte of this
     request is [Idle] — the natural end of a kept-alive connection,
     not an answerable error. *)
  let got_any = ref (Buffer.length acc > 0) in
  if !got_any then arm_timeout conn.fd read_timeout_ms
  else arm_timeout conn.fd idle_timeout_ms;
  let fill_once () =
    let n = read_some conn.fd buf in
    if n > 0 then begin
      if not !got_any then begin
        got_any := true;
        arm_timeout conn.fd read_timeout_ms
      end;
      Buffer.add_subbytes acc buf 0 n
    end
  in
  try
    (* 1. accumulate until the blank line ending the header section *)
    let rec fill () =
      match find_header_end (Buffer.contents acc) with
      | Some split -> split
      | None ->
        if Buffer.length acc > max_header_bytes then
          raise (Fail (Bad_request "header section too large"));
        fill_once ();
        fill ()
    in
    let split = fill () in
    let section = String.sub (Buffer.contents acc) 0 split in
    let meth, target, version, headers =
      match header_lines section with
      | [] -> raise (Fail (Bad_request "empty request"))
      | first :: header_rows ->
        let meth, target, version = parse_request_line first in
        (meth, target, version, List.map split_header_line header_rows)
    in
    (* 2. body: exactly Content-Length bytes (0 when absent); anything
       beyond it is the next pipelined request and stays in the
       connection's residual buffer *)
    let content_length =
      match List.assoc_opt "content-length" headers with
      | None -> 0
      | Some v -> (
        match int_of_string_opt (String.trim v) with
        | Some n when n >= 0 -> n
        | _ -> raise (Fail (Bad_request ("bad content-length: " ^ v))))
    in
    if content_length > max_body then
      raise (Fail (Payload_too_large { limit = max_body }));
    if List.mem_assoc "transfer-encoding" headers then
      raise (Fail (Bad_request "chunked transfer encoding not supported"));
    let wanted = split + content_length in
    while Buffer.length acc < wanted do
      fill_once ()
    done;
    let all = Buffer.contents acc in
    conn.residual <- String.sub all wanted (String.length all - wanted);
    let body = String.sub all split content_length in
    Ok { meth; target; version; headers; body }
  with
  | Fail Timeout when not !got_any -> Error Idle
  | Fail e -> Error e

let header req name =
  List.assoc_opt (String.lowercase_ascii name) req.headers

(* RFC 7230 connection persistence: HTTP/1.1 persists unless the client
   says [close]; HTTP/1.0 closes unless it says [keep-alive]. *)
let wants_close req =
  let conn_header =
    Option.map String.lowercase_ascii (header req "connection")
  in
  match (req.version, conn_header) with
  | _, Some "close" -> true
  | "HTTP/1.0", Some "keep-alive" -> false
  | "HTTP/1.0", _ -> true
  | _, _ -> false

let split_target target =
  match String.index_opt target '?' with
  | None -> (target, [])
  | Some q ->
    let path = String.sub target 0 q in
    let query = String.sub target (q + 1) (String.length target - q - 1) in
    let params =
      String.split_on_char '&' query
      |> List.filter_map (fun pair ->
             if pair = "" then None
             else
               match String.index_opt pair '=' with
               | None -> Some (pair, "")
               | Some i ->
                 Some
                   ( String.sub pair 0 i,
                     String.sub pair (i + 1) (String.length pair - i - 1) ))
    in
    (path, params)

let status_reason = function
  | 200 -> "OK"
  | 202 -> "Accepted"
  | 400 -> "Bad Request"
  | 404 -> "Not Found"
  | 405 -> "Method Not Allowed"
  | 408 -> "Request Timeout"
  | 409 -> "Conflict"
  | 413 -> "Payload Too Large"
  | 422 -> "Unprocessable Entity"
  | 429 -> "Too Many Requests"
  | 500 -> "Internal Server Error"
  | 503 -> "Service Unavailable"
  | c when c >= 200 && c < 300 -> "OK"
  | c when c >= 400 && c < 500 -> "Client Error"
  | _ -> "Server Error"

let response_string ?(headers = []) ?(close = true) ~status body =
  let buf = Buffer.create (256 + String.length body) in
  Buffer.add_string buf
    (Printf.sprintf "HTTP/1.1 %d %s\r\n" status (status_reason status));
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf "%s: %s\r\n" k v))
    headers;
  Buffer.add_string buf
    (Printf.sprintf "Content-Length: %d\r\n" (String.length body));
  Buffer.add_string buf
    (if close then "Connection: close\r\n\r\n"
     else "Connection: keep-alive\r\n\r\n");
  Buffer.add_string buf body;
  Buffer.contents buf

let write_response ?headers ?close fd ~status body =
  let s = response_string ?headers ?close ~status body in
  let n = String.length s in
  let rec push off =
    if off < n then
      match Unix.write_substring fd s off (n - off) with
      | written -> push (off + written)
      | exception Unix.Unix_error (EINTR, _, _) -> push off
  in
  try push 0
  with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ()
