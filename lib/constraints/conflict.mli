(** The [Conflict] predicate of the paper (Fig. 7) plus full-schedule
    re-validation.

    {!admissible} is the scheduler-facing check: may core [i] start (or
    resume) {e now}, given what has completed and what is running?
    {!validate} re-checks a complete schedule from first principles and is
    what the test-suite trusts. *)

type running = { core : int; power : int }

type reason =
  | Precedence_pending of int  (** this predecessor has not completed *)
  | Concurrency_clash of int  (** this excluded core is running *)
  | Power_exceeded of { budget : int; needed : int }
  | Bist_clash of int  (** this core shares a BIST engine and is running *)

val admissible :
  Soctest_soc.Soc_def.t ->
  Constraint_def.t ->
  completed:(int -> bool) ->
  running:running list ->
  candidate:int ->
  (unit, reason) result
(** First reason found, checked in the paper's order: precedence,
    concurrency, power, BIST–scan. *)

type ctx
(** Precomputed per-core constraint context: predecessor arrays,
    exclusion and BIST-peer bitsets, per-core power. Build once per
    solve with {!context}; it is immutable and shareable. *)

val context : Soctest_soc.Soc_def.t -> Constraint_def.t -> ctx

val admissible_ctx :
  ctx ->
  completed:(int -> bool) ->
  running:Soctest_tam.Bitset.t ->
  running_power:int ->
  candidate:int ->
  (unit, reason) result
(** Exactly {!admissible}, but the caller maintains the running set as a
    bitset over core ids (universe [0 .. core_count]) and the running
    power total incrementally, so each check is array loads and word
    ANDs rather than list scans. When several running cores offend, the
    reported one is the lowest core id — the same answer the list-based
    check gives on the ascending running lists the scheduler builds. *)

type violation =
  | Capacity of Soctest_tam.Schedule.violation
  | Precedence_violated of { before : int; after : int }
  | Concurrency_violated of { a : int; b : int; time : int }
  | Power_violated of { time : int; power : int; limit : int }
  | Bist_violated of { a : int; b : int; engine : int; time : int }
  | Preemptions_exceeded of { core : int; count : int; limit : int }
  | Width_above_total of { core : int; width : int }
  | Width_changed of { core : int; widths : int list }
      (** a core's slices disagree on TAM width — preemption may move a
          core to different {e wires}, never to a different width *)
  | Unknown_core of { core : int }
      (** a slice names a core id the SOC does not define *)

val validate :
  Soctest_soc.Soc_def.t ->
  Constraint_def.t ->
  Soctest_tam.Schedule.t ->
  violation list
(** Empty list = the schedule satisfies TAM capacity and every constraint.
    Cores absent from the schedule are not flagged here (completeness is a
    separate property checked by callers who require it). Never raises on
    malformed input: out-of-range core ids become {!Unknown_core}
    violations (and are excluded from the SOC-dereferencing checks), and a
    core whose slices change width becomes {!Width_changed} rather than
    the [Invalid_argument] that [Schedule.width_of_core] would raise. *)

val pp_reason : Format.formatter -> reason -> unit
val pp_violation : Format.formatter -> violation -> unit
