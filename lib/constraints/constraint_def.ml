module Soc_def = Soctest_soc.Soc_def
module Core_def = Soctest_soc.Core_def

type t = {
  core_count : int;
  precedence : (int * int) list;
  concurrency : (int * int) list;
  power_limit : int option;
  max_preemptions : int array;
}

let check_id n what id =
  if id < 1 || id > n then
    invalid_arg (Printf.sprintf "Constraint_def: %s core id %d out of range" what id)

(* Kahn's algorithm: detect precedence cycles and compute levels. *)
let levels_of ~core_count ~precedence =
  let indegree = Array.make (core_count + 1) 0 in
  let succ = Array.make (core_count + 1) [] in
  List.iter
    (fun (a, b) ->
      indegree.(b) <- indegree.(b) + 1;
      succ.(a) <- b :: succ.(a))
    precedence;
  let current =
    ref
      (List.filter
         (fun id -> indegree.(id) = 0)
         (List.init core_count (fun k -> k + 1)))
  in
  let seen = ref 0 in
  let levels = ref [] in
  while !current <> [] do
    levels := List.sort compare !current :: !levels;
    seen := !seen + List.length !current;
    let next = ref [] in
    List.iter
      (fun id ->
        List.iter
          (fun s ->
            indegree.(s) <- indegree.(s) - 1;
            if indegree.(s) = 0 then next := s :: !next)
          succ.(id))
      !current;
    current := !next
  done;
  if !seen <> core_count then None else Some (List.rev !levels)

let make ~core_count ?(precedence = []) ?(concurrency = []) ?power_limit
    ?(max_preemptions = []) () =
  if core_count < 1 then
    invalid_arg "Constraint_def.make: core_count must be >= 1";
  List.iter
    (fun (a, b) ->
      check_id core_count "precedence" a;
      check_id core_count "precedence" b;
      if a = b then invalid_arg "Constraint_def.make: precedence self-pair")
    precedence;
  List.iter
    (fun (a, b) ->
      check_id core_count "concurrency" a;
      check_id core_count "concurrency" b;
      if a = b then invalid_arg "Constraint_def.make: concurrency self-pair")
    concurrency;
  (match power_limit with
  | Some p when p <= 0 ->
    invalid_arg "Constraint_def.make: power limit must be positive"
  | _ -> ());
  let preempt = Array.make core_count 0 in
  List.iter
    (fun (id, limit) ->
      check_id core_count "preemption" id;
      if limit < 0 then
        invalid_arg "Constraint_def.make: negative preemption limit";
      preempt.(id - 1) <- limit)
    max_preemptions;
  (match levels_of ~core_count ~precedence with
  | None -> invalid_arg "Constraint_def.make: precedence cycle"
  | Some _ -> ());
  {
    core_count;
    precedence = List.sort_uniq compare precedence;
    concurrency =
      List.sort_uniq compare
        (List.map (fun (a, b) -> (min a b, max a b)) concurrency);
    power_limit;
    max_preemptions = preempt;
  }

let unconstrained ~core_count = make ~core_count ()
let empty = unconstrained

let of_soc soc ?precedence ?power_limit ?max_preemptions () =
  let hierarchy_pairs = soc.Soc_def.hierarchy in
  let bist_pairs =
    List.concat_map
      (fun (_, ids) ->
        let rec pairs = function
          | [] -> []
          | x :: rest -> List.map (fun y -> (x, y)) rest @ pairs rest
        in
        pairs ids)
      (Soc_def.bist_groups soc)
  in
  make
    ~core_count:(Soc_def.core_count soc)
    ?precedence
    ~concurrency:(hierarchy_pairs @ bist_pairs)
    ?power_limit ?max_preemptions ()

let must_precede t i j = List.mem (i, j) t.precedence

let excluded t i j =
  i <> j && List.mem ((min i j), (max i j)) t.concurrency

let predecessors t j =
  List.filter_map (fun (a, b) -> if b = j then Some a else None) t.precedence

let max_preemptions_of t id =
  check_id t.core_count "max_preemptions_of" id;
  t.max_preemptions.(id - 1)

let with_power_limit t power_limit =
  (match power_limit with
  | Some p when p <= 0 ->
    invalid_arg "Constraint_def.with_power_limit: must be positive"
  | _ -> ());
  { t with power_limit }

let with_max_preemptions t assoc =
  let preempt = Array.make t.core_count 0 in
  List.iter
    (fun (id, limit) ->
      check_id t.core_count "preemption" id;
      if limit < 0 then
        invalid_arg "Constraint_def.with_max_preemptions: negative limit";
      preempt.(id - 1) <- limit)
    assoc;
  { t with max_preemptions = preempt }

let topological_levels t =
  match levels_of ~core_count:t.core_count ~precedence:t.precedence with
  | Some levels -> levels
  | None -> [] (* unreachable: cycles rejected at construction *)

let pp ppf t =
  Format.fprintf ppf "@[<v>constraints over %d cores" t.core_count;
  List.iter
    (fun (a, b) -> Format.fprintf ppf "@,%d < %d" a b)
    t.precedence;
  List.iter
    (fun (a, b) -> Format.fprintf ppf "@,%d # %d" a b)
    t.concurrency;
  (match t.power_limit with
  | Some p -> Format.fprintf ppf "@,power <= %d" p
  | None -> ());
  Array.iteri
    (fun k limit ->
      if limit > 0 then
        Format.fprintf ppf "@,core %d: <= %d preemptions" (k + 1) limit)
    t.max_preemptions;
  Format.fprintf ppf "@]"
