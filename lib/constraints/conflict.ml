module Soc_def = Soctest_soc.Soc_def
module Core_def = Soctest_soc.Core_def
module Schedule = Soctest_tam.Schedule
module Bitset = Soctest_tam.Bitset
module Obs = Soctest_obs.Obs

type running = { core : int; power : int }

(* [admissible] sits in the optimizer's innermost contention loop, so it
   gets a lock-free counter only; the full [validate] pass is rare
   enough to afford a span. *)
let admissible_counter = Obs.counter "constraints.admissible_checks"
let validations_counter = Obs.counter "constraints.validations"

type reason =
  | Precedence_pending of int
  | Concurrency_clash of int
  | Power_exceeded of { budget : int; needed : int }
  | Bist_clash of int

let shares_bist soc a b =
  match
    ( (Soc_def.core soc a).Core_def.bist_engine,
      (Soc_def.core soc b).Core_def.bist_engine )
  with
  | Some ea, Some eb -> ea = eb
  | _ -> false

let admissible soc constraints ~completed ~running ~candidate =
  Obs.incr admissible_counter;
  let pending =
    List.find_opt
      (fun p -> not (completed p))
      (Constraint_def.predecessors constraints candidate)
  in
  match pending with
  | Some p -> Error (Precedence_pending p)
  | None -> (
    match
      List.find_opt
        (fun r -> Constraint_def.excluded constraints candidate r.core)
        running
    with
    | Some r -> Error (Concurrency_clash r.core)
    | None -> (
      let power_ok =
        match constraints.Constraint_def.power_limit with
        | None -> Ok ()
        | Some limit ->
          let used = List.fold_left (fun a r -> a + r.power) 0 running in
          let needed = (Soc_def.core soc candidate).Core_def.power in
          if used + needed > limit then
            Error (Power_exceeded { budget = limit - used; needed })
          else Ok ()
      in
      match power_ok with
      | Error _ as e -> e
      | Ok () -> (
        match
          List.find_opt (fun r -> shares_bist soc candidate r.core) running
        with
        | Some r -> Error (Bist_clash r.core)
        | None -> Ok ())))

(* Everything [admissible] scans lists for — predecessors, exclusion
   pairs, BIST peers, per-core power — is fixed once the SOC and
   constraint set are known, so the optimizer builds this context once
   per solve and the per-candidate check becomes array loads and word
   ANDs. Core ids are the bit indices (universe [0 .. core_count], bit 0
   unused), matching the scheduler's 1-based cores. *)
type ctx = {
  preds : int array array;
      (* preds.(j): predecessors of j, in [Constraint_def.predecessors]
         order (ascending, from the sorted pair list) *)
  excl : Bitset.t array; (* excl.(j): cores that may not run beside j *)
  bist : Bitset.t array; (* bist.(j): cores sharing j's BIST engine *)
  power : int array; (* power.(j): test power of core j *)
  power_limit : int option;
}

let context soc constraints =
  let n = constraints.Constraint_def.core_count in
  let preds =
    Array.init (n + 1) (fun j ->
        if j = 0 then [||]
        else Array.of_list (Constraint_def.predecessors constraints j))
  in
  let excl = Array.init (n + 1) (fun _ -> Bitset.create (n + 1)) in
  List.iter
    (fun (a, b) ->
      Bitset.add excl.(a) b;
      Bitset.add excl.(b) a)
    constraints.Constraint_def.concurrency;
  let bist = Array.init (n + 1) (fun _ -> Bitset.create (n + 1)) in
  for a = 1 to n do
    for b = a + 1 to n do
      if shares_bist soc a b then begin
        Bitset.add bist.(a) b;
        Bitset.add bist.(b) a
      end
    done
  done;
  let power =
    Array.init (n + 1) (fun j ->
        if j = 0 then 0 else (Soc_def.core soc j).Core_def.power)
  in
  { preds; excl; bist; power;
    power_limit = constraints.Constraint_def.power_limit }

(* Same checks, same order, same reason payloads as [admissible], but
   against a maintained running bitset and power total instead of a
   rebuilt list. [Bitset.first_common] returns the lowest-id running
   offender, which is what the list scan found too: the optimizer always
   materialized [running] in ascending core order. The differential
   tests in test_constraints hold the two implementations together. *)
let admissible_ctx ctx ~completed ~running ~running_power ~candidate =
  Obs.incr admissible_counter;
  let preds = ctx.preds.(candidate) in
  let rec first_pending k =
    if k >= Array.length preds then None
    else if not (completed preds.(k)) then Some preds.(k)
    else first_pending (k + 1)
  in
  match first_pending 0 with
  | Some p -> Error (Precedence_pending p)
  | None -> (
    match Bitset.first_common ctx.excl.(candidate) running with
    | Some r -> Error (Concurrency_clash r)
    | None -> (
      let power_ok =
        match ctx.power_limit with
        | None -> Ok ()
        | Some limit ->
          let needed = ctx.power.(candidate) in
          if running_power + needed > limit then
            Error (Power_exceeded { budget = limit - running_power; needed })
          else Ok ()
      in
      match power_ok with
      | Error _ as e -> e
      | Ok () -> (
        match Bitset.first_common ctx.bist.(candidate) running with
        | Some r -> Error (Bist_clash r)
        | None -> Ok ())))

type violation =
  | Capacity of Schedule.violation
  | Precedence_violated of { before : int; after : int }
  | Concurrency_violated of { a : int; b : int; time : int }
  | Power_violated of { time : int; power : int; limit : int }
  | Bist_violated of { a : int; b : int; engine : int; time : int }
  | Preemptions_exceeded of { core : int; count : int; limit : int }
  | Width_above_total of { core : int; width : int }
  | Width_changed of { core : int; widths : int list }
  | Unknown_core of { core : int }

let overlap (a : Schedule.slice) (b : Schedule.slice) =
  if a.Schedule.start < b.Schedule.stop && b.Schedule.start < a.Schedule.stop
  then Some (max a.Schedule.start b.Schedule.start)
  else None

(* Slice core ids the SOC actually defines. Everything that dereferences
   [Soc_def.core] or the per-core preemption limits must stay inside this
   set: a rogue id is reported as [Unknown_core] instead of letting the
   lookup raise [Invalid_argument] mid-validation. *)
let known_core soc core = core >= 1 && core <= Soc_def.core_count soc

let unknown_core_violations soc (sched : Schedule.t) =
  List.filter_map
    (fun core ->
      if known_core soc core then None else Some (Unknown_core { core }))
    (Schedule.cores sched)

(* The framework's schedules assign each core one TAM width for its whole
   (possibly preempted) test; [Schedule.width_of_core] raises on a width
   change, so group slices by hand here and report it as a violation. *)
let width_change_violations (sched : Schedule.t) =
  List.filter_map
    (fun (core, slices) ->
      let widths =
        Array.to_list (Array.map (fun s -> s.Schedule.width) slices)
        |> List.sort_uniq compare
      in
      match widths with
      | [] | [ _ ] -> None
      | widths -> Some (Width_changed { core; widths }))
    (Schedule.index sched)

let pairwise_violations soc constraints (sched : Schedule.t) =
  let slices =
    List.filter
      (fun s -> known_core soc s.Schedule.core)
      sched.Schedule.slices
  in
  let rec loop acc = function
    | [] -> acc
    | s :: rest ->
      let acc =
        List.fold_left
          (fun acc s' ->
            if s.Schedule.core = s'.Schedule.core then acc
            else
              match overlap s s' with
              | None -> acc
              | Some time ->
                let a = min s.Schedule.core s'.Schedule.core
                and b = max s.Schedule.core s'.Schedule.core in
                let acc =
                  if Constraint_def.excluded constraints a b then
                    Concurrency_violated { a; b; time } :: acc
                  else acc
                in
                if shares_bist soc a b then
                  let engine =
                    Option.value ~default:0
                      (Soc_def.core soc a).Core_def.bist_engine
                  in
                  Bist_violated { a; b; engine; time } :: acc
                else acc)
          acc rest
      in
      loop acc rest
  in
  loop [] slices

let precedence_violations constraints (sched : Schedule.t) =
  List.filter_map
    (fun (before, after) ->
      match
        (Schedule.core_finish sched before, Schedule.core_start sched after)
      with
      | Some fin, Some start when start < fin ->
        Some (Precedence_violated { before; after })
      | None, Some _ ->
        (* successor scheduled but predecessor never runs at all *)
        Some (Precedence_violated { before; after })
      | _ -> None)
    constraints.Constraint_def.precedence

let power_violations soc constraints (sched : Schedule.t) =
  match constraints.Constraint_def.power_limit with
  | None -> []
  | Some limit ->
    (* power profile is piecewise constant between slice boundaries *)
    let boundaries =
      List.concat_map
        (fun s -> [ s.Schedule.start; s.Schedule.stop ])
        sched.Schedule.slices
      |> List.sort_uniq compare
    in
    List.filter_map
      (fun time ->
        let power =
          List.fold_left
            (fun acc s ->
              if known_core soc s.Schedule.core then
                acc + (Soc_def.core soc s.Schedule.core).Core_def.power
              else acc)
            0
            (Schedule.active_at sched time)
        in
        if power > limit then Some (Power_violated { time; power; limit })
        else None)
      boundaries

let preemption_violations constraints (sched : Schedule.t) =
  List.filter_map
    (fun core ->
      if core < 1 || core > constraints.Constraint_def.core_count then None
      else
        let count = Schedule.preemptions sched core in
        let limit = Constraint_def.max_preemptions_of constraints core in
        if count > limit then
          Some (Preemptions_exceeded { core; count; limit })
        else None)
    (Schedule.cores sched)

let width_violations (sched : Schedule.t) =
  List.filter_map
    (fun (s : Schedule.slice) ->
      if s.Schedule.width > sched.Schedule.tam_width then
        Some
          (Width_above_total
             { core = s.Schedule.core; width = s.Schedule.width })
      else None)
    sched.Schedule.slices

let validate soc constraints sched =
  Obs.with_span ~cat:"constraints" "conflict.validate" @@ fun () ->
  Obs.incr validations_counter;
  List.map (fun v -> Capacity v) (Schedule.check_capacity sched)
  @ unknown_core_violations soc sched
  @ width_violations sched
  @ width_change_violations sched
  @ precedence_violations constraints sched
  @ pairwise_violations soc constraints sched
  @ power_violations soc constraints sched
  @ preemption_violations constraints sched

let pp_reason ppf = function
  | Precedence_pending p ->
    Format.fprintf ppf "predecessor %d not completed" p
  | Concurrency_clash c -> Format.fprintf ppf "excluded core %d running" c
  | Power_exceeded { budget; needed } ->
    Format.fprintf ppf "power budget %d < needed %d" budget needed
  | Bist_clash c ->
    Format.fprintf ppf "BIST engine shared with running core %d" c

let pp_violation ppf = function
  | Capacity v -> Schedule.pp_violation ppf v
  | Precedence_violated { before; after } ->
    Format.fprintf ppf "precedence %d < %d violated" before after
  | Concurrency_violated { a; b; time } ->
    Format.fprintf ppf "concurrency %d # %d violated at t=%d" a b time
  | Power_violated { time; power; limit } ->
    Format.fprintf ppf "power %d > limit %d at t=%d" power limit time
  | Bist_violated { a; b; engine; time } ->
    Format.fprintf ppf "BIST engine %d shared by %d and %d at t=%d" engine
      a b time
  | Preemptions_exceeded { core; count; limit } ->
    Format.fprintf ppf "core %d preempted %d times (limit %d)" core count
      limit
  | Width_above_total { core; width } ->
    Format.fprintf ppf "core %d width %d exceeds the TAM" core width
  | Width_changed { core; widths } ->
    Format.fprintf ppf "core %d changes width across slices (%s)" core
      (String.concat ", " (List.map string_of_int widths))
  | Unknown_core { core } ->
    Format.fprintf ppf "slice refers to core %d, which the SOC does not define"
      core
