(** Test-scheduling constraints (paper, Sec. 4).

    - {b Precedence} [i < j]: test [i] must complete before test [j]
      begins ("abort at first fail" orderings, memories first, ...).
    - {b Concurrency} [i # j]: tests [i] and [j] must never overlap in
      time (hierarchical Intest/Extest conflicts, shared test hardware).
    - {b Power}: the power values of concurrently running tests must not
      sum beyond [power_limit].
    - {b Preemption}: each core may be interrupted at most
      [max_preemptions] times; each interruption costs an extra scan-out +
      scan-in when the test resumes. *)

type t = private {
  core_count : int;
  precedence : (int * int) list;  (** [(before, after)] pairs *)
  concurrency : (int * int) list;  (** unordered exclusion pairs *)
  power_limit : int option;  (** [None] = unconstrained *)
  max_preemptions : int array;  (** index [core_id - 1] *)
}

val unconstrained : core_count:int -> t
(** No precedence/concurrency/power constraints, preemption forbidden
    (non-preemptive scheduling — [max_preemptions] all zero). *)

val empty : core_count:int -> t
(** Alias of {!unconstrained}: the constraint set under which Problem 1
    ([P_nw]) is Problem 2 — the spelling {!Soctest_engine.Flow} uses. *)

val make :
  core_count:int ->
  ?precedence:(int * int) list ->
  ?concurrency:(int * int) list ->
  ?power_limit:int ->
  ?max_preemptions:(int * int) list ->
  unit ->
  t
(** [max_preemptions] is an association list [(core, limit)]; unlisted
    cores get [0].
    @raise Invalid_argument on ids out of range, self-pairs, a
    non-positive power limit, negative preemption limits, or a precedence
    cycle. *)

val of_soc :
  Soctest_soc.Soc_def.t ->
  ?precedence:(int * int) list ->
  ?power_limit:int ->
  ?max_preemptions:(int * int) list ->
  unit ->
  t
(** Like {!make}, additionally deriving concurrency exclusions from the
    SOC design hierarchy (parent/child Intest-Extest conflicts) and from
    shared BIST engines. *)

val must_precede : t -> int -> int -> bool
(** [must_precede t i j] — is there a (direct) constraint [i < j]? *)

val excluded : t -> int -> int -> bool
(** [excluded t i j] — direct concurrency exclusion between [i] and [j]
    (symmetric)? *)

val predecessors : t -> int -> int list
val max_preemptions_of : t -> int -> int

val with_power_limit : t -> int option -> t
val with_max_preemptions : t -> (int * int) list -> t
(** Functional updates used by experiment sweeps. *)

val topological_levels : t -> int list list
(** Cores grouped by precedence depth (level 0 = no predecessors). Useful
    for diagnostics; the scheduler itself works greedily. *)

val pp : Format.formatter -> t -> unit
