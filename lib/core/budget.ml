type t = {
  deadline : float option;  (** absolute, [Unix.gettimeofday] seconds *)
  max_evals : int option;
  evals : int Atomic.t;
  cancelled : bool Atomic.t;
  limited : bool;  (** false only for {!unlimited} *)
}

let unlimited =
  {
    deadline = None;
    max_evals = None;
    evals = Atomic.make 0;
    cancelled = Atomic.make false;
    limited = false;
  }

let create ?deadline_ms ?max_evals () =
  (match deadline_ms with
  | Some d when d < 0. -> invalid_arg "Budget.create: deadline_ms < 0"
  | _ -> ());
  (match max_evals with
  | Some m when m < 0 -> invalid_arg "Budget.create: max_evals < 0"
  | _ -> ());
  {
    deadline =
      Option.map (fun d -> Unix.gettimeofday () +. (d /. 1000.)) deadline_ms;
    max_evals;
    evals = Atomic.make 0;
    cancelled = Atomic.make false;
    limited = true;
  }

let cancel t = if t.limited then Atomic.set t.cancelled true
let note_eval t = if t.limited then ignore (Atomic.fetch_and_add t.evals 1)
let evals t = Atomic.get t.evals

let exhausted t =
  t.limited
  && (Atomic.get t.cancelled
     || (match t.max_evals with
        | Some m -> Atomic.get t.evals >= m
        | None -> false)
     ||
     match t.deadline with
     | Some d -> Unix.gettimeofday () >= d
     | None -> false)

let remaining_ms t =
  Option.map
    (fun d -> Float.max 0. ((d -. Unix.gettimeofday ()) *. 1000.))
    t.deadline
