module Pareto = Soctest_wrapper.Pareto

type report = {
  result : Optimizer.result;
  initial_time : int;
  rounds : int;
  evaluations : int;
}

(* neighbouring Pareto widths of [w] for this core: one step down, one
   step up (within the TAM) *)
let neighbours pareto ~tam_width w =
  let ws = Pareto.pareto_widths pareto in
  let smaller =
    List.filter (fun x -> x < w) ws
    |> List.fold_left (fun acc x -> max acc x) 0
  in
  let larger =
    List.filter (fun x -> x > w && x <= tam_width) ws
    |> List.fold_left (fun acc x -> if acc = 0 then x else min acc x) 0
  in
  List.filter (fun x -> x > 0) [ smaller; larger ]

let polish ?(max_rounds = 10) ?(budget = Budget.unlimited)
    ?(eval : Optimizer.evaluator = Optimizer.run_request) prepared ~tam_width
    ~constraints seed =
  if max_rounds < 0 then invalid_arg "Improve.polish: negative max_rounds";
  if seed.Optimizer.widths = [] then
    invalid_arg "Improve.polish: seed has no width assignment";
  Soctest_obs.Obs.with_span ~cat:"phase" "improve.polish" @@ fun () ->
  let params = seed.Optimizer.params in
  let req = Optimizer.request ~params ~tam_width ~constraints () in
  let evaluations = ref 0 in
  let eval overrides =
    incr evaluations;
    Budget.note_eval budget;
    eval ~overrides prepared req
  in
  let best = ref seed in
  let widths = ref seed.Optimizer.widths in
  let rounds = ref 0 in
  let improved = ref true in
  (* the neighbour pair of a (core, width) point is fixed for the whole
     polish; cache it across rounds, which revisit the same points *)
  let neighbour_cache : (int * int, int list) Hashtbl.t = Hashtbl.create 32 in
  let neighbours_of core w =
    match Hashtbl.find_opt neighbour_cache (core, w) with
    | Some ns -> ns
    | None ->
      let ns = neighbours (Optimizer.pareto_of prepared core) ~tam_width w in
      Hashtbl.add neighbour_cache (core, w) ns;
      ns
  in
  while !improved && !rounds < max_rounds && not (Budget.exhausted budget) do
    improved := false;
    incr rounds;
    List.iter
      (fun (core, w) ->
        List.iter
          (fun w' ->
            if not (Budget.exhausted budget) then
              let overrides =
                (core, w') :: List.remove_assoc core !widths
              in
              match eval overrides with
              | candidate ->
                if
                  candidate.Optimizer.testing_time
                  < !best.Optimizer.testing_time
                then begin
                  best := candidate;
                  widths := candidate.Optimizer.widths;
                  improved := true
                end
              | exception Optimizer.Infeasible _ -> ())
          (neighbours_of core w))
      !widths
  done;
  {
    result = !best;
    initial_time = seed.Optimizer.testing_time;
    rounds = !rounds;
    evaluations = !evaluations;
  }

let best_with_polish ?max_rounds ?budget ?eval prepared ~tam_width
    ~constraints () =
  let seed =
    Optimizer.best_over_params ?budget prepared ~tam_width ~constraints ()
  in
  polish ?max_rounds ?budget ?eval prepared ~tam_width ~constraints seed
