(** [TAM_schedule_optimizer] — the paper's integrated wrapper/TAM
    co-optimization and constraint-driven test scheduling algorithm
    (Figs. 4–8).

    The algorithm packs one rectangle per core (height = TAM width chosen
    from the core's Pareto set, width = testing time) into a bin of height
    [W], greedily, with three selection priorities:

    + resume tests that have exhausted their preemption budget (they must
      now run to completion);
    + resume begun tests, largest remaining time first;
    + start new tests at their {e preferred width}, largest test first;

    then two idle-time repairs: inserting an unstarted test at the leftover
    width when its preferred width is within [insert_slack] wires, and
    widening a just-started test to the highest Pareto width that fits.
    Precedence, concurrency, power and BIST-resource admissibility is
    checked on every assignment; preemption is chargeable ([si + so] extra
    cycles per resume-after-gap). *)

type params = {
  wmax : int;  (** per-core max TAM width for Pareto analysis (paper: 64) *)
  percent : int;  (** preferred-width tolerance [P], percent (paper: 1–10) *)
  delta : int;  (** bottleneck bump [Delta], wires (paper: 0–4) *)
  insert_slack : int;  (** idle-insertion width slack (paper: 3) *)
  widen : bool;
      (** enable the width-increase heuristic (Fig. 4 lines 15–16);
          disabling it preserves parallelism on small SOCs and is part of
          the [best_over_params] grid *)
}

val default_params : params
(** [wmax = 64], [percent = 5], [delta = 1], [insert_slack = 3],
    [widen = true]. *)

type prepared
(** Per-SOC Pareto analyses, reusable across parameter sweeps. *)

val prepare : ?wmax:int -> Soctest_soc.Soc_def.t -> prepared

val prepare_via :
  (Soctest_soc.Core_def.t -> wmax:int -> Soctest_wrapper.Pareto.t) ->
  ?wmax:int ->
  Soctest_soc.Soc_def.t ->
  prepared
(** [prepare_via compute soc] builds the same analyses as {!prepare} but
    obtains each core's staircase from [compute] — the hook the engine's
    deduplicating Pareto cache plugs into. [compute core ~wmax] must
    return a staircase equivalent to [Pareto.compute core ~wmax]. *)

val pareto_of : prepared -> int -> Soctest_wrapper.Pareto.t
val soc_of : prepared -> Soctest_soc.Soc_def.t

val wmax_of : prepared -> int
(** The [wmax] the Pareto analyses were built with; [params.wmax] passed
    to {!run} must match it for the per-core staircases to be valid. *)

exception Infeasible of string
(** Raised when no incomplete core can ever be scheduled (e.g. a power
    limit below a single core's power). Precedence cycles are rejected
    earlier, by {!Soctest_constraints.Constraint_def.make}. *)

type result = {
  schedule : Soctest_tam.Schedule.t;
  testing_time : int;  (** schedule makespan, cycles *)
  widths : (int * int) list;  (** final TAM width per core *)
  preemptions : (int * int) list;  (** cores actually preempted *)
  params : params;
}

type request = {
  tam_width : int;  (** total SOC TAM width [W] *)
  constraints : Soctest_constraints.Constraint_def.t;
  params : params;
}
(** One solver request: everything a single scheduler evaluation needs
    beyond the prepared SOC. Grouping the three labels into a value makes
    call sites cacheable and lets searchers pass requests around instead
    of re-threading argument tails. *)

val request :
  ?params:params ->
  tam_width:int ->
  constraints:Soctest_constraints.Constraint_def.t ->
  unit ->
  request
(** [params] defaults to {!default_params}. *)

val run :
  ?overrides:(int * int) list ->
  prepared ->
  tam_width:int ->
  constraints:Soctest_constraints.Constraint_def.t ->
  params:params ->
  result
(** One optimizer run. The returned schedule is complete (every core
    appears) and satisfies capacity and all constraints; this is
    re-checked internally with {!Soctest_constraints.Conflict.validate}
    and an assertion failure would indicate a bug.
    [overrides] forces per-core preferred widths (snapped down to the
    core's Pareto set), bypassing the percent/delta heuristic — the
    entry point for external search over width assignments.
    @raise Infeasible see above.
    @raise Invalid_argument if [tam_width < 1], params are out of range,
    or an override is out of range. *)

val run_request : ?overrides:(int * int) list -> prepared -> request -> result
(** {!run} on a {!request} — the canonical evaluation entry point. *)

type evaluator = ?overrides:(int * int) list -> prepared -> request -> result
(** The shape of one scheduler evaluation. Searchers ({!Anneal},
    {!Improve}, the portfolio strategies) accept an [?eval] of this type
    so the engine can substitute a deduplicating cached evaluator for the
    direct {!run_request}. *)

val default_percents : int list
val default_deltas : int list
val default_slacks : int list
val default_widens : bool list
(** The default parameter grid of {!best_over_params}, exported so other
    searchers (e.g. the portfolio solver) can enumerate exactly the same
    grid points. *)

val grid_points :
  wmax:int ->
  ?percents:int list ->
  ?deltas:int list ->
  ?slacks:int list ->
  ?widens:bool list ->
  unit ->
  params list
(** The exact parameter enumeration of {!best_over_params} (percent-major,
    then delta, slack, widen), exported so the engine and the portfolio
    reproduce the sequential optimum including its tie choice. *)

val best_over_params :
  ?budget:Budget.t ->
  prepared ->
  tam_width:int ->
  constraints:Soctest_constraints.Constraint_def.t ->
  ?percents:int list ->
  ?deltas:int list ->
  ?slacks:int list ->
  ?widens:bool list ->
  unit ->
  result
(** The paper's Table-1 methodology, extended: try every combination of
    the given parameter values (defaults: percent in 1..10 plus a few
    coarse larger values, delta in 0..4, insert slack in 3 or 8, widen
    on/off) and keep the schedule with the smallest testing time (ties:
    first found). When [budget] expires mid-grid the best incumbent so
    far is returned (at least the first point is always evaluated);
    query [Budget.exhausted] to detect the degradation. *)
