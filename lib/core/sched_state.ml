module Schedule = Soctest_tam.Schedule
module Bitset = Soctest_tam.Bitset

type core_state = {
  mutable w_pref : int;
  mutable w_assigned : int;
  mutable first_begin : int;
  mutable end_time : int;
  mutable time_remaining : int;
  mutable begun : bool;
  mutable scheduled : bool;
  mutable complete : bool;
  mutable preempts : int;
  max_preempts : int;
  mutable assign_start : int;
}

type t = {
  tam_width : int;
  cores : core_state array;
  running : Bitset.t;
  mutable running_power : int;
  mutable slices : Schedule.slice list;
  mutable curr_time : int;
  mutable w_avail : int;
  mutable remaining : int;
}

let create ~tam_width ~prefs ~max_preempts =
  if Array.length prefs <> Array.length max_preempts then
    invalid_arg "Sched_state.create: array length mismatch";
  let cores =
    Array.mapi
      (fun k (w_pref, time_remaining, _) ->
        {
          w_pref;
          w_assigned = 0;
          first_begin = -1;
          end_time = -1;
          time_remaining;
          begun = false;
          scheduled = false;
          complete = false;
          preempts = 0;
          max_preempts = max_preempts.(k);
          assign_start = -1;
        })
      prefs
  in
  {
    tam_width;
    cores;
    running = Bitset.create (Array.length cores + 1);
    running_power = 0;
    slices = [];
    curr_time = 0;
    w_avail = tam_width;
    remaining = Array.length cores;
  }

let core t id = t.cores.(id - 1)

let incomplete_exists t = t.remaining > 0

let running_cores t =
  let ids = ref [] in
  Array.iteri
    (fun k c -> if c.scheduled then ids := (k + 1) :: !ids)
    t.cores;
  List.rev !ids

let record_slice t id ~stop =
  let c = core t id in
  if stop > c.assign_start then begin
    let merged =
      match t.slices with
      | prev :: rest
        when prev.Schedule.core = id
             && prev.Schedule.stop = c.assign_start
             && prev.Schedule.width = c.w_assigned ->
        Some ({ prev with Schedule.stop } :: rest)
      | _ -> None
    in
    match merged with
    | Some slices -> t.slices <- slices
    | None ->
      t.slices <-
        {
          Schedule.core = id;
          width = c.w_assigned;
          start = c.assign_start;
          stop;
        }
        :: t.slices
  end

let to_schedule t =
  Schedule.make ~tam_width:t.tam_width ~slices:(List.rev t.slices)

let pp ppf t =
  Format.fprintf ppf
    "@[<v>scheduler state: t=%d w_avail=%d remaining=%d" t.curr_time
    t.w_avail t.remaining;
  Array.iteri
    (fun k c ->
      Format.fprintf ppf
        "@,core %2d: pref=%2d asgn=%2d rem=%7d %s%s%s preempts=%d/%d"
        (k + 1) c.w_pref c.w_assigned c.time_remaining
        (if c.begun then "begun " else "")
        (if c.scheduled then "RUN " else "")
        (if c.complete then "done" else "")
        c.preempts c.max_preempts)
    t.cores;
  Format.fprintf ppf "@]"
