(** Local-search polish on top of the greedy optimizer.

    The greedy scheduler commits to a preferred width per core up front;
    the best-of parameter grid explores only a few global knobs. This
    pass hill-climbs on the {e per-core} width vector: starting from a
    result's realized widths, it repeatedly tries moving one core to a
    neighbouring Pareto width (one step narrower or wider) and re-runs
    the scheduler with that vector forced, keeping strict improvements.
    A natural "future work" extension of the paper — the schedule stays
    exactly as validatable as before, only the width assignment search
    deepens. *)

type report = {
  result : Optimizer.result;  (** best schedule found *)
  initial_time : int;
  rounds : int;  (** hill-climbing rounds performed *)
  evaluations : int;  (** scheduler re-runs spent *)
}

val polish :
  ?max_rounds:int ->
  ?budget:Budget.t ->
  ?eval:Optimizer.evaluator ->
  Optimizer.prepared ->
  tam_width:int ->
  constraints:Soctest_constraints.Constraint_def.t ->
  Optimizer.result ->
  report
(** [polish prepared ~tam_width ~constraints seed] improves [seed] until
    a local optimum or [max_rounds] (default 10) rounds. The returned
    result is never worse than the seed. Deterministic.

    [budget] stops the climb before the next evaluation once exhausted
    (the result so far is kept); [eval] replaces the direct
    {!Optimizer.run_request} evaluation with e.g. the engine's caching
    evaluator without changing the climb itself.
    @raise Invalid_argument if [max_rounds < 0] or the seed's width list
    is empty. *)

val best_with_polish :
  ?max_rounds:int ->
  ?budget:Budget.t ->
  ?eval:Optimizer.evaluator ->
  Optimizer.prepared ->
  tam_width:int ->
  constraints:Soctest_constraints.Constraint_def.t ->
  unit ->
  report
(** Convenience: {!Optimizer.best_over_params} then {!polish}, under the
    same [budget]. *)
