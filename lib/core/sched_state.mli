(** Mutable per-core bookkeeping of the scheduling loop — the data
    structure of the paper's Fig. 3, plus the slice accumulator from which
    the final {!Soctest_tam.Schedule.t} is assembled. *)

type core_state = {
  mutable w_pref : int;  (** preferred TAM width *)
  mutable w_assigned : int;  (** TAM width assigned *)
  mutable first_begin : int;  (** first begin time *)
  mutable end_time : int;  (** (provisional) end time *)
  mutable time_remaining : int;
  mutable begun : bool;
  mutable scheduled : bool;
  mutable complete : bool;
  mutable preempts : int;
  max_preempts : int;
  mutable assign_start : int;  (** start of the current run, if scheduled *)
}

type t = {
  tam_width : int;
  cores : core_state array;  (** index [core_id - 1] *)
  running : Soctest_tam.Bitset.t;
      (** scheduled cores as a bitset over ids [1 .. n] (bit 0 unused),
          kept in lockstep with the [scheduled] flags by the optimizer so
          admissibility checks need no per-call list build *)
  mutable running_power : int;
      (** total test power of the scheduled cores, maintained
          incrementally alongside [running] *)
  mutable slices : Soctest_tam.Schedule.slice list;
  mutable curr_time : int;
  mutable w_avail : int;
  mutable remaining : int;  (** cores not yet complete *)
}

val create :
  tam_width:int -> prefs:(int * int * int) array -> max_preempts:int array -> t
(** [create ~tam_width ~prefs ~max_preempts] where [prefs.(k)] is
    [(w_pref, initial_time_remaining, _)] for core [k+1] — the third
    component is ignored (kept for symmetry with callers building
    triples); [max_preempts.(k)] its preemption budget. *)

val core : t -> int -> core_state
(** 1-based accessor. *)

val incomplete_exists : t -> bool
val running_cores : t -> int list
(** Ids of currently scheduled cores. *)

val record_slice : t -> int -> stop:int -> unit
(** Close the current run of a core at time [stop] and append it to the
    slice list (merging with a contiguous same-width predecessor). *)

val to_schedule : t -> Soctest_tam.Schedule.t
val pp : Format.formatter -> t -> unit
