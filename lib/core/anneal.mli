(** Simulated-annealing search over per-core TAM width vectors — the
    stochastic sibling of {!Improve}'s hill climbing. Where polish stops
    at the first local optimum, annealing occasionally accepts uphill
    moves early on and can escape it. Fully deterministic given the
    seed (splitmix64; no global randomness). *)

type report = {
  result : Optimizer.result;  (** best schedule visited *)
  initial_time : int;
  iterations : int;  (** iterations actually performed *)
  accepted : int;  (** moves accepted (incl. uphill) *)
}

val search :
  ?seed:int64 ->
  ?iterations:int ->
  ?initial_temperature:float ->
  ?cooling:float ->
  ?budget:Budget.t ->
  ?eval:Optimizer.evaluator ->
  Optimizer.prepared ->
  tam_width:int ->
  constraints:Soctest_constraints.Constraint_def.t ->
  Optimizer.result ->
  report
(** [search prepared ~tam_width ~constraints seed_result] runs
    [iterations] (default 400) single-width moves from the seed's width
    vector. Temperature starts at [initial_temperature] (default: 2% of
    the seed makespan) and decays geometrically by [cooling] (default
    0.99) per iteration. The best schedule ever visited is returned —
    never worse than the seed.

    [budget] stops the walk early (before the next evaluation) once
    exhausted; [report.iterations] then records how far it got. The
    returned result is still never worse than the seed. [eval] replaces
    the direct {!Optimizer.run_request} evaluation — the engine passes
    its caching evaluator here; substituting one never changes the walk
    (same results, same acceptance sequence), only its cost.
    @raise Invalid_argument for non-positive iterations/temperature or a
    cooling factor outside (0, 1]. *)
