(** Cooperative deadline / cancellation token for the solver stack.

    A budget bounds a solve by wall-clock time, by a maximum number of
    scheduler evaluations, or by an explicit {!cancel} — whichever trips
    first. It is {e cooperative}: searchers ({!Optimizer.best_over_params},
    {!Anneal.search}, {!Improve.polish}, the portfolio racer and the
    engine) poll {!exhausted} between evaluations and, on expiry, stop and
    return the best incumbent found so far instead of raising. Nothing is
    ever interrupted mid-evaluation, so every result handed back is a
    complete, validated schedule.

    Tokens are safe to share across OCaml 5 domains: the evaluation count
    and the cancel flag are [Atomic]s, the deadline is immutable. The same
    token can be threaded through several searchers at once (e.g. every
    strategy of a portfolio race) to enforce one global budget. *)

type t

val unlimited : t
(** Never exhausted (and {!cancel} on it is a no-op): the default for
    every [?budget] argument in the stack. *)

val create : ?deadline_ms:float -> ?max_evals:int -> unit -> t
(** A fresh token. [deadline_ms] is wall-clock milliseconds measured from
    this call; [max_evals] caps the number of {!note_eval} ticks.
    Omitting both yields a token only {!cancel} can exhaust.
    @raise Invalid_argument if [deadline_ms < 0] or [max_evals < 0]. *)

val cancel : t -> unit
(** Exhaust the token immediately (idempotent). No-op on {!unlimited}. *)

val note_eval : t -> unit
(** Record one scheduler evaluation against the budget. Searchers tick
    once per {e requested} evaluation — whether or not a cache served it —
    so budget behaviour does not depend on cache state. *)

val evals : t -> int
(** Evaluations recorded so far. *)

val exhausted : t -> bool
(** [true] once the deadline has passed, [max_evals] ticks were recorded,
    or {!cancel} was called. Monotonic for cancel/evals; the wall-clock
    component is re-read on every call. *)

val remaining_ms : t -> float option
(** Milliseconds until the deadline ([None] if no deadline; clamped to
    [0.] once passed). *)
