module Soc_def = Soctest_soc.Soc_def
module Core_def = Soctest_soc.Core_def
module Pareto = Soctest_wrapper.Pareto
module Wrapper_design = Soctest_wrapper.Wrapper_design
module Schedule = Soctest_tam.Schedule
module Constraint_def = Soctest_constraints.Constraint_def
module Conflict = Soctest_constraints.Conflict
module Obs = Soctest_obs.Obs

type params = {
  wmax : int;
  percent : int;
  delta : int;
  insert_slack : int;
  widen : bool;
}

let default_params =
  { wmax = 64; percent = 5; delta = 1; insert_slack = 3; widen = true }

type prepared = { soc : Soc_def.t; wmax : int; paretos : Pareto.t array }

let prepare_via compute ?(wmax = 64) soc =
  if wmax < 1 then invalid_arg "Optimizer.prepare: wmax must be >= 1";
  Obs.with_span ~cat:"phase" "wrapper.pareto"
    ~args:[ ("soc", soc.Soc_def.name); ("wmax", string_of_int wmax) ]
  @@ fun () ->
  let paretos = Array.map (fun core -> compute core ~wmax) soc.Soc_def.cores in
  { soc; wmax; paretos }

let prepare ?wmax soc =
  prepare_via (fun core ~wmax -> Pareto.compute core ~wmax) ?wmax soc

let pareto_of prepared id = prepared.paretos.(id - 1)
let soc_of prepared = prepared.soc
let wmax_of prepared = prepared.wmax

let src = Logs.Src.create "soctest.optimizer" ~doc:"TAM schedule optimizer"

module Log = (val Logs.src_log src : Logs.LOG)

let runs_counter = Obs.counter "optimizer.runs"
let grid_cells_counter = Obs.counter "optimizer.grid_cells"
let preemptions_counter = Obs.counter "tam.preemptions"

exception Infeasible of string

type result = {
  schedule : Schedule.t;
  testing_time : int;
  widths : (int * int) list;
  preemptions : (int * int) list;
  params : params;
}

(* ------------------------------------------------------------------ *)

let check_params (params : params) =
  if params.wmax < 1 then invalid_arg "Optimizer: wmax must be >= 1";
  if params.percent < 0 then invalid_arg "Optimizer: percent must be >= 0";
  if params.delta < 0 then invalid_arg "Optimizer: delta must be >= 0";
  if params.insert_slack < 0 then
    invalid_arg "Optimizer: insert_slack must be >= 0"

(* Preferred width, clamped so that the core can actually be scheduled on a
   TAM of [tam_width] wires (Fig. 5 plus a feasibility clamp). *)
let preferred_width pareto ~params ~tam_width =
  let pref =
    Pareto.preferred_width pareto ~percent:params.percent
      ~delta:params.delta
  in
  if pref <= tam_width then pref
  else
    (* largest Pareto width that fits; Pareto sets always contain 1 *)
    List.fold_left
      (fun acc w -> if w <= tam_width then max acc w else acc)
      1
      (Pareto.pareto_widths pareto)

(* Extra cycles charged when a test resumes after a gap: one wasted
   scan-out of the interrupted state plus the scan-in to restore it. *)
let preemption_penalty (core : Core_def.t) ~width =
  let d = Wrapper_design.design core ~width in
  d.Wrapper_design.si + d.Wrapper_design.so

let run ?(overrides = []) prepared ~tam_width ~constraints ~params =
  check_params params;
  if tam_width < 1 then
    invalid_arg "Optimizer.run: tam_width must be >= 1";
  if
    constraints.Constraint_def.core_count
    <> Soc_def.core_count prepared.soc
  then invalid_arg "Optimizer.run: constraints core_count mismatch";
  let soc = prepared.soc in
  let n = Soc_def.core_count soc in
  List.iter
    (fun (id, w) ->
      if id < 1 || id > n then
        invalid_arg "Optimizer.run: override core id out of range";
      if w < 1 || w > tam_width then
        invalid_arg "Optimizer.run: override width out of range")
    overrides;
  Obs.incr runs_counter;
  Obs.with_span ~cat:"phase" "tam.schedule"
    ~args:
      [
        ("percent", string_of_int params.percent);
        ("delta", string_of_int params.delta);
      ]
  @@ fun () ->
  let pareto id = prepared.paretos.(id - 1) in
  (* Initialize (Fig. 5): preferred widths and initial remaining times;
     explicit overrides (snapped to the Pareto set) replace the
     percent/delta heuristic — the hook the local-search Improver uses *)
  let prefs =
    Array.init n (fun k ->
        let p = pareto (k + 1) in
        let w =
          match List.assoc_opt (k + 1) overrides with
          | Some forced -> Pareto.effective_width p ~width:forced
          | None -> preferred_width p ~params ~tam_width
        in
        (w, Pareto.time p ~width:w, 0))
  in
  let max_preempts =
    Array.init n (fun k ->
        Constraint_def.max_preemptions_of constraints (k + 1))
  in
  let st = Sched_state.create ~tam_width ~prefs ~max_preempts in
  Log.debug (fun m ->
      m "init W=%d prefs=[%s]" tam_width
        (String.concat ";"
           (Array.to_list
              (Array.mapi
                 (fun k (w, t, _) -> Printf.sprintf "%d:%d/%d" (k + 1) w t)
                 prefs))));
  let core_state id = Sched_state.core st id in
  let completed id = (core_state id).Sched_state.complete in
  (* Constraint context and per-core power are fixed for the whole solve;
     the running set lives in [st.running]/[st.running_power], maintained
     by [assign]/[update], so each admissibility check is scan-free. *)
  let ctx = Conflict.context soc constraints in
  let core_power =
    Array.init (n + 1) (fun id ->
        if id = 0 then 0 else (Soc_def.core soc id).Core_def.power)
  in
  let admissible id =
    match
      Conflict.admissible_ctx ctx ~completed ~running:st.Sched_state.running
        ~running_power:st.Sched_state.running_power ~candidate:id
    with
    | Ok () -> true
    | Error _ -> false
  in

  (* Assign (Fig. 6). [width] is a wire budget; we snap it down to the
     effective width (the wires actually worth connecting). *)
  let assign id ~width ~gap_resume =
    let c = core_state id in
    let p = pareto id in
    let width =
      if c.Sched_state.begun then width (* resumes keep their width *)
      else Pareto.effective_width p ~width
    in
    assert (width >= 1 && width <= st.Sched_state.w_avail);
    c.Sched_state.w_assigned <- width;
    c.Sched_state.scheduled <- true;
    Soctest_tam.Bitset.add st.Sched_state.running id;
    st.Sched_state.running_power <-
      st.Sched_state.running_power + core_power.(id);
    st.Sched_state.w_avail <- st.Sched_state.w_avail - width;
    if gap_resume then begin
      Obs.incr preemptions_counter;
      Obs.instant ~cat:"tam" "preempt"
        ~args:
          [
            ("core", string_of_int id);
            ("t", string_of_int st.Sched_state.curr_time);
          ];
      c.Sched_state.preempts <- c.Sched_state.preempts + 1;
      c.Sched_state.time_remaining <-
        c.Sched_state.time_remaining
        + preemption_penalty (Soc_def.core soc id) ~width
    end;
    if not c.Sched_state.begun then begin
      c.Sched_state.begun <- true;
      c.Sched_state.first_begin <- st.Sched_state.curr_time;
      c.Sched_state.time_remaining <- Pareto.time p ~width
    end;
    c.Sched_state.assign_start <- st.Sched_state.curr_time;
    c.Sched_state.end_time <-
      st.Sched_state.curr_time + c.Sched_state.time_remaining;
    Log.debug (fun m ->
        m "t=%d assign core %d width=%d remaining=%d avail=%d"
          st.Sched_state.curr_time id width c.Sched_state.time_remaining
          st.Sched_state.w_avail)
  in

  (* Candidate scans below use integer sentinels ([best_id = 0] = none
     yet) instead of option-folding closures: the loops run once per
     scheduling step per grid point and used to allocate a [Some key]
     per considered core. A strictly greater key displaces the incumbent;
     ties keep the lowest core id. [admissible] is always the last
     conjunct so the constraint machinery runs only for cores that pass
     the cheap width/state tests. *)

  (* Priority 1: begun cores out of preemption budget — must continue.
     Such a core is descheduled only at Update boundaries and rescheduled
     here first, so its resume is always contiguous (no gap, no charge);
     the [end_time = curr_time] guard makes that an enforced invariant
     rather than an assumption. *)
  let try_priority1 () =
    let best_id = ref 0 and best_key = ref min_int in
    for id = 1 to n do
      let c = core_state id in
      if
        (not c.Sched_state.complete)
        && (not c.Sched_state.scheduled)
        && c.Sched_state.begun
        && c.Sched_state.preempts >= c.Sched_state.max_preempts
        && c.Sched_state.end_time = st.Sched_state.curr_time
        && c.Sched_state.w_assigned <= st.Sched_state.w_avail
        && c.Sched_state.time_remaining > !best_key
        && admissible id
      then begin
        best_id := id;
        best_key := c.Sched_state.time_remaining
      end
    done;
    if !best_id = 0 then false
    else begin
      assign !best_id ~width:(core_state !best_id).Sched_state.w_assigned
        ~gap_resume:false;
      true
    end
  in

  (* Priorities 2 and 3 (Fig. 4 lines 7–12): after the protected cores,
     "all the incomplete tests contend for the available TAM width"
     (paper Sec. 4, Test preemption) — begun-but-preemptable tests (at
     their assigned width) and unstarted tests (at their preferred width)
     compete by largest remaining testing time. A begun test that loses
     the contention and is left without wires is thereby preempted; it
     resumes later, charged [si + so] extra cycles. *)
  let try_contend () =
    let best_id = ref 0 and best_key = ref min_int in
    for id = 1 to n do
      let c = core_state id in
      if (not c.Sched_state.complete) && not c.Sched_state.scheduled then begin
        let gap = c.Sched_state.end_time < st.Sched_state.curr_time in
        let width, budget_ok =
          if c.Sched_state.begun then
            ( c.Sched_state.w_assigned,
              (not gap) || c.Sched_state.preempts < c.Sched_state.max_preempts
            )
          else (c.Sched_state.w_pref, true)
        in
        if
          width <= st.Sched_state.w_avail && budget_ok
          && c.Sched_state.time_remaining > !best_key
          && admissible id
        then begin
          best_id := id;
          best_key := c.Sched_state.time_remaining
        end
      end
    done;
    if !best_id = 0 then false
    else begin
      let id = !best_id in
      let c = core_state id in
      if c.Sched_state.begun then begin
        let gap = c.Sched_state.end_time < st.Sched_state.curr_time in
        assign id ~width:c.Sched_state.w_assigned ~gap_resume:gap
      end
      else assign id ~width:c.Sched_state.w_pref ~gap_resume:false;
      true
    end
  in

  (* Idle-time rectangle insertion (Fig. 4 lines 13–14): an unstarted core
     whose preferred width is within [insert_slack] wires of what is left
     runs on the leftover wires. Smallest preferred width first. *)
  let try_insert () =
    let best_id = ref 0 and best_key = ref min_int in
    for id = 1 to n do
      let c = core_state id in
      if
        (not c.Sched_state.complete)
        && (not c.Sched_state.scheduled)
        && (not c.Sched_state.begun)
        && c.Sched_state.w_pref <= st.Sched_state.w_avail + params.insert_slack
        && -c.Sched_state.w_pref > !best_key
        && admissible id
      then begin
        best_id := id;
        best_key := -c.Sched_state.w_pref
      end
    done;
    if !best_id = 0 then false
    else begin
      assign !best_id ~width:st.Sched_state.w_avail ~gap_resume:false;
      true
    end
  in

  (* Width increase to fill idle wires (Fig. 4 lines 15–16): widen the
     just-started core that gains the most testing time. *)
  let try_widen () =
    let curr = st.Sched_state.curr_time in
    let best = ref None in
    for id = 1 to n do
      let c = core_state id in
      if
        c.Sched_state.scheduled
        && c.Sched_state.first_begin = curr
        && c.Sched_state.assign_start = curr
      then begin
        let p = pareto id in
        let budget = c.Sched_state.w_assigned + st.Sched_state.w_avail in
        let w_new = Pareto.effective_width p ~width:budget in
        if w_new > c.Sched_state.w_assigned then begin
          let gain =
            Pareto.time p ~width:c.Sched_state.w_assigned
            - Pareto.time p ~width:w_new
          in
          if gain > 0 then
            match !best with
            | Some (_, _, best_gain) when best_gain >= gain -> ()
            | _ -> best := Some (id, w_new, gain)
        end
      end
    done;
    match !best with
    | None -> false
    | Some (id, w_new, _) ->
      let c = core_state id in
      let p = pareto id in
      st.Sched_state.w_avail <-
        st.Sched_state.w_avail - (w_new - c.Sched_state.w_assigned);
      c.Sched_state.w_assigned <- w_new;
      c.Sched_state.time_remaining <- Pareto.time p ~width:w_new;
      c.Sched_state.end_time <- curr + c.Sched_state.time_remaining;
      true
  in

  (* Update (Fig. 8): advance to the earliest completion among running
     tests, deschedule everybody, credit elapsed time. *)
  let update () =
    (* two direct passes over the core array instead of materializing a
       running-id list: find the earliest completion, then retire *)
    let dt = ref max_int in
    for id = 1 to n do
      let c = core_state id in
      if c.Sched_state.scheduled && c.Sched_state.time_remaining < !dt then
        dt := c.Sched_state.time_remaining
    done;
    if !dt = max_int then
      raise
        (Infeasible
           (Printf.sprintf
              "no schedulable core at t=%d (check power limit vs core \
               powers and precedence/concurrency structure)"
              st.Sched_state.curr_time));
    let new_time = st.Sched_state.curr_time + !dt in
    for id = 1 to n do
      let c = core_state id in
      if c.Sched_state.scheduled then begin
        Sched_state.record_slice st id ~stop:new_time;
        c.Sched_state.scheduled <- false;
        c.Sched_state.end_time <- new_time;
        c.Sched_state.time_remaining <- c.Sched_state.time_remaining - !dt;
        if c.Sched_state.time_remaining = 0 then begin
          c.Sched_state.complete <- true;
          st.Sched_state.remaining <- st.Sched_state.remaining - 1
        end
      end
    done;
    Soctest_tam.Bitset.clear st.Sched_state.running;
    st.Sched_state.running_power <- 0;
    st.Sched_state.curr_time <- new_time;
    st.Sched_state.w_avail <- tam_width;
    Log.debug (fun m ->
        m "t=%d update: %d cores remaining" new_time st.Sched_state.remaining)
  in

  (* Main loop (Fig. 4). *)
  while Sched_state.incomplete_exists st do
    if st.Sched_state.w_avail > 0 then begin
      let progress =
        try_priority1 () || try_contend () || try_insert ()
        || (params.widen && try_widen ())
      in
      if not progress then st.Sched_state.w_avail <- 0
    end
    else update ()
  done;

  let schedule = Sched_state.to_schedule st in
  (* The optimizer never trusts its own bookkeeping: re-validate. *)
  (match Conflict.validate soc constraints schedule with
  | [] -> ()
  | v :: _ ->
    Format.kasprintf failwith "Optimizer bug: invalid schedule (%a)"
      Conflict.pp_violation v);
  (* one pass over the per-core index; validation above has already
     rejected width changes, so the first slice's width is the core's *)
  let by_core = Schedule.index schedule in
  let widths =
    List.map (fun (id, ss) -> (id, ss.(0).Schedule.width)) by_core
  in
  let preemptions =
    List.filter_map
      (fun (id, ss) ->
        let gaps = ref 0 and prev_stop = ref ss.(0).Schedule.stop in
        for k = 1 to Array.length ss - 1 do
          if ss.(k).Schedule.start > !prev_stop then incr gaps;
          prev_stop := max !prev_stop ss.(k).Schedule.stop
        done;
        if !gaps = 0 then None else Some (id, !gaps))
      by_core
  in
  {
    schedule;
    testing_time = Schedule.makespan schedule;
    widths;
    preemptions;
    params;
  }

type request = {
  tam_width : int;
  constraints : Constraint_def.t;
  params : params;
}

let request ?(params = default_params) ~tam_width ~constraints () =
  { tam_width; constraints; params }

let run_request ?overrides prepared req =
  run ?overrides prepared ~tam_width:req.tam_width
    ~constraints:req.constraints ~params:req.params

type evaluator = ?overrides:(int * int) list -> prepared -> request -> result

let default_percents = [ 1; 2; 3; 4; 5; 6; 7; 8; 9; 10; 15; 25; 40 ]
let default_deltas = [ 0; 1; 2; 4 ]
let default_slacks = [ 3; 8 ]
let default_widens = [ true; false ]

let grid_points ~wmax ?(percents = default_percents)
    ?(deltas = default_deltas) ?(slacks = default_slacks)
    ?(widens = default_widens) () =
  List.concat_map
    (fun percent ->
      List.concat_map
        (fun delta ->
          List.concat_map
            (fun insert_slack ->
              List.map
                (fun widen -> { wmax; percent; delta; insert_slack; widen })
                widens)
            slacks)
        deltas)
    percents

let best_over_params ?(budget = Budget.unlimited) prepared ~tam_width
    ~constraints ?percents ?deltas ?slacks ?widens () =
  Obs.with_span ~cat:"phase" "optimizer.grid" @@ fun () ->
  let points =
    grid_points ~wmax:prepared.wmax ?percents ?deltas ?slacks ?widens ()
  in
  if points = [] then
    invalid_arg "Optimizer.best_over_params: empty parameter lists";
  let best = ref None in
  List.iter
    (fun params ->
      (* the first point always runs, so an already-expired budget still
         yields a valid incumbent *)
      if !best = None || not (Budget.exhausted budget) then begin
        Obs.incr grid_cells_counter;
        Budget.note_eval budget;
        let result = run prepared ~tam_width ~constraints ~params in
        match !best with
        | Some r when r.testing_time <= result.testing_time -> ()
        | _ -> best := Some result
      end)
    points;
  Option.get !best
