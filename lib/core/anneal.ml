module Pareto = Soctest_wrapper.Pareto
module Synth = Soctest_soc.Synth
module Obs = Soctest_obs.Obs

let accepted_counter = Obs.counter "anneal.accepted"
let rejected_counter = Obs.counter "anneal.rejected"
let temperature_gauge = Obs.gauge "anneal.temperature"

type report = {
  result : Optimizer.result;
  initial_time : int;
  iterations : int;
  accepted : int;
}

(* uniform float in [0, 1) from the splitmix stream *)
let next_unit rng = float_of_int (Synth.next_int rng 1_000_000) /. 1e6

let search ?(seed = 0x5EEDC0DEL) ?(iterations = 400) ?initial_temperature
    ?(cooling = 0.99) ?(budget = Budget.unlimited)
    ?(eval : Optimizer.evaluator = Optimizer.run_request) prepared ~tam_width
    ~constraints seed_result =
  if iterations < 1 then invalid_arg "Anneal.search: iterations must be >= 1";
  if not (cooling > 0. && cooling <= 1.) then
    invalid_arg "Anneal.search: cooling must be in (0, 1]";
  let initial_time = seed_result.Optimizer.testing_time in
  let temperature =
    match initial_temperature with
    | Some t ->
      if t <= 0. then invalid_arg "Anneal.search: temperature must be > 0";
      t
    | None -> max 1. (0.02 *. float_of_int initial_time)
  in
  Obs.with_span ~cat:"phase" "anneal.search"
    ~args:[ ("iterations", string_of_int iterations) ]
  @@ fun () ->
  let params = seed_result.Optimizer.params in
  let rng = Synth.rng_of_seed seed in
  let widths = Array.of_list seed_result.Optimizer.widths in
  let n = Array.length widths in
  if n = 0 then invalid_arg "Anneal.search: seed has no width assignment";
  let req = Optimizer.request ~params ~tam_width ~constraints () in
  let eval () = eval ~overrides:(Array.to_list widths) prepared req in
  let current = ref seed_result in
  let best = ref seed_result in
  let accepted = ref 0 in
  let temp = ref temperature in
  let performed = ref 0 in
  (* Per-core Pareto widths that fit the TAM, computed once instead of
     re-filtered (and [List.nth]-walked) every iteration. The move draw
     below consumes exactly one [next_int] on exactly the same count as
     the old list filter did, so seeded runs replay identically. *)
  let eligible : (int, int array) Hashtbl.t = Hashtbl.create 16 in
  let eligible_of core =
    match Hashtbl.find_opt eligible core with
    | Some ws -> ws
    | None ->
      let ws =
        Array.of_list
          (List.filter
             (fun x -> x <= tam_width)
             (Pareto.pareto_widths (Optimizer.pareto_of prepared core)))
      in
      Hashtbl.add eligible core ws;
      ws
  in
  let i = ref 0 in
  while !i < iterations && not (Budget.exhausted budget) do
    incr i;
    incr performed;
    Budget.note_eval budget;
    let k = Synth.next_int rng n in
    let core, w = widths.(k) in
    let ws = eligible_of core in
    let has_w = Array.exists (fun x -> x = w) ws in
    let m = Array.length ws - if has_w then 1 else 0 in
    (match m with
    | 0 -> ()
    | _ ->
      (* index into [ws] with the current width skipped — the same
         candidate order the filtered list had *)
      let j = Synth.next_int rng m in
      let w' =
        let rec pick idx j =
          if ws.(idx) = w then pick (idx + 1) j
          else if j = 0 then ws.(idx)
          else pick (idx + 1) (j - 1)
        in
        pick 0 j
      in
      widths.(k) <- (core, w');
      (match eval () with
      | candidate ->
        let delta =
          float_of_int
            (candidate.Optimizer.testing_time
           - !current.Optimizer.testing_time)
        in
        let accept =
          delta <= 0. || next_unit rng < exp (-.delta /. !temp)
        in
        if accept then begin
          Obs.incr accepted_counter;
          incr accepted;
          current := candidate;
          (* re-anchor to the realized widths (snapping may have moved
             other cores' effective assignment) *)
          List.iteri
            (fun i cw -> if i < n then widths.(i) <- cw)
            candidate.Optimizer.widths;
          if
            candidate.Optimizer.testing_time
            < !best.Optimizer.testing_time
          then best := candidate
        end
        else begin
          Obs.incr rejected_counter;
          widths.(k) <- (core, w)
        end
      | exception Optimizer.Infeasible _ -> widths.(k) <- (core, w)));
    temp := !temp *. cooling;
    Obs.set_gauge temperature_gauge !temp
  done;
  { result = !best; initial_time; iterations = !performed; accepted = !accepted }
