module Obs = Soctest_obs.Obs

type assignment = { bins : int list array; loads : int array }

let packs_counter = Obs.counter "wrapper.bfd_packs"
let exact_nodes_counter = Obs.counter "wrapper.bfd_exact_nodes"

let least_loaded loads =
  let best = ref 0 in
  for k = 1 to Array.length loads - 1 do
    if loads.(k) < loads.(!best) then best := k
  done;
  !best

let pack ~weights ~bins =
  if bins < 1 then invalid_arg "Bfd.pack: bins must be >= 1";
  Obs.incr packs_counter;
  if Array.exists (fun w -> w < 0) weights then
    invalid_arg "Bfd.pack: negative weight";
  let order = Array.init (Array.length weights) Fun.id in
  Array.sort (fun a b -> compare weights.(b) weights.(a)) order;
  let result = { bins = Array.make bins []; loads = Array.make bins 0 } in
  Array.iter
    (fun item ->
      let bin = least_loaded result.loads in
      result.bins.(bin) <- item :: result.bins.(bin);
      result.loads.(bin) <- result.loads.(bin) + weights.(item))
    order;
  result

let max_load a = Array.fold_left max 0 a.loads

let min_load a =
  Array.fold_left min max_int a.loads

let spread_units ~loads ~units =
  if units < 0 then invalid_arg "Bfd.spread_units: negative units";
  let bins = Array.length loads in
  if bins = 0 then invalid_arg "Bfd.spread_units: no bins";
  let current = Array.copy loads in
  let given = Array.make bins 0 in
  for _ = 1 to units do
    let bin = least_loaded current in
    current.(bin) <- current.(bin) + 1;
    given.(bin) <- given.(bin) + 1
  done;
  given

(* branch and bound: place items (largest first) into bins; prune when
   the current max load already reaches the incumbent; break bin
   symmetry by only allowing a new (empty) bin once per level *)
let exact_max_load ~weights ~bins =
  if bins < 1 then invalid_arg "Bfd.exact_max_load: bins must be >= 1";
  if Array.exists (fun w -> w < 0) weights then
    invalid_arg "Bfd.exact_max_load: negative weight";
  if Array.length weights > 20 then
    invalid_arg "Bfd.exact_max_load: too many items for exact search";
  let items = Array.copy weights in
  Array.sort (fun a b -> compare b a) items;
  let n = Array.length items in
  let loads = Array.make bins 0 in
  (* seed the incumbent with the heuristic *)
  let best = ref (max_load (pack ~weights ~bins)) in
  let rec place k current_max =
    Obs.incr exact_nodes_counter;
    if current_max >= !best then ()
    else if k = n then best := current_max
    else begin
      let seen_empty = ref false in
      for b = 0 to bins - 1 do
        let empty = loads.(b) = 0 in
        if (not empty) || not !seen_empty then begin
          if empty then seen_empty := true;
          loads.(b) <- loads.(b) + items.(k);
          place (k + 1) (max current_max loads.(b));
          loads.(b) <- loads.(b) - items.(k)
        end
      done
    end
  in
  place 0 0;
  !best
