module Obs = Soctest_obs.Obs

type assignment = { bins : int list array; loads : int array }

let packs_counter = Obs.counter "wrapper.bfd_packs"
let exact_nodes_counter = Obs.counter "wrapper.bfd_exact_nodes"

let least_loaded loads =
  let best = ref 0 in
  for k = 1 to Array.length loads - 1 do
    if loads.(k) < loads.(!best) then best := k
  done;
  !best

let pack ~weights ~bins =
  if bins < 1 then invalid_arg "Bfd.pack: bins must be >= 1";
  Obs.incr packs_counter;
  if Array.exists (fun w -> w < 0) weights then
    invalid_arg "Bfd.pack: negative weight";
  let order = Array.init (Array.length weights) Fun.id in
  Array.sort (fun a b -> compare weights.(b) weights.(a)) order;
  let result = { bins = Array.make bins []; loads = Array.make bins 0 } in
  Array.iter
    (fun item ->
      let bin = least_loaded result.loads in
      result.bins.(bin) <- item :: result.bins.(bin);
      result.loads.(bin) <- result.loads.(bin) + weights.(item))
    order;
  result

let max_load a = Array.fold_left max 0 a.loads

let min_load a =
  Array.fold_left min max_int a.loads

(* Closed-form water-fill, replacing a unit-at-a-time loop that cost
   O(units x bins) and dominated Pareto preparation (two calls per
   candidate width per core, with [units] in the hundreds). The loop's
   outcome is fully determined: it raises the lowest bins to a common
   level, then hands the leftover units to level bins in ascending index
   order (ties in [least_loaded] resolve to the lowest index). So find
   the largest level whose fill cost stays within [units] by binary
   search and distribute directly — bit-identical to the loop, which
   test_bfd checks by property. *)
let spread_units ~loads ~units =
  if units < 0 then invalid_arg "Bfd.spread_units: negative units";
  let bins = Array.length loads in
  if bins = 0 then invalid_arg "Bfd.spread_units: no bins";
  let given = Array.make bins 0 in
  if units > 0 then begin
    let fill level =
      Array.fold_left (fun acc v -> acc + max 0 (level - v)) 0 loads
    in
    let min_load = Array.fold_left min loads.(0) loads in
    (* largest level with fill level <= units; fill is monotone *)
    let lo = ref min_load and hi = ref (min_load + units) in
    while !lo < !hi do
      let mid = !lo + ((!hi - !lo + 1) / 2) in
      if fill mid <= units then lo := mid else hi := mid - 1
    done;
    let level = !lo in
    let spare = ref (units - fill level) in
    Array.iteri
      (fun i v -> if v < level then given.(i) <- level - v)
      loads;
    Array.iteri
      (fun i v ->
        if !spare > 0 && v <= level then begin
          given.(i) <- given.(i) + 1;
          decr spare
        end)
      loads
  end;
  given

(* branch and bound: place items (largest first) into bins; prune when
   the current max load already reaches the incumbent; break bin
   symmetry by only allowing a new (empty) bin once per level *)
let exact_max_load ~weights ~bins =
  if bins < 1 then invalid_arg "Bfd.exact_max_load: bins must be >= 1";
  if Array.exists (fun w -> w < 0) weights then
    invalid_arg "Bfd.exact_max_load: negative weight";
  if Array.length weights > 20 then
    invalid_arg "Bfd.exact_max_load: too many items for exact search";
  let items = Array.copy weights in
  Array.sort (fun a b -> compare b a) items;
  let n = Array.length items in
  let loads = Array.make bins 0 in
  (* seed the incumbent with the heuristic *)
  let best = ref (max_load (pack ~weights ~bins)) in
  let rec place k current_max =
    Obs.incr exact_nodes_counter;
    if current_max >= !best then ()
    else if k = n then best := current_max
    else begin
      let seen_empty = ref false in
      for b = 0 to bins - 1 do
        let empty = loads.(b) = 0 in
        if (not empty) || not !seen_empty then begin
          if empty then seen_empty := true;
          loads.(b) <- loads.(b) + items.(k);
          place (k + 1) (max current_max loads.(b));
          loads.(b) <- loads.(b) - items.(k)
        end
      done
    end
  in
  place 0 0;
  !best
