module Core_def = Soctest_soc.Core_def
module Obs = Soctest_obs.Obs

type t = {
  core_id : int;
  wmax : int;
  raw : int array;  (** raw.(w-1) = Design_wrapper time at width w *)
  envelope : int array;  (** prefix minimum of [raw] *)
  effective : int array;  (** smallest width achieving [envelope.(w-1)] *)
  pareto : int list;  (** ascending Pareto-optimal widths *)
}

let computes_counter = Obs.counter "pareto.computes"

let compute core ~wmax =
  if wmax < 1 then invalid_arg "Pareto.compute: wmax must be >= 1";
  Obs.incr computes_counter;
  Obs.with_span ~cat:"wrapper" "pareto.compute"
    ~args:[ ("core", string_of_int core.Core_def.id) ]
  @@ fun () ->
  let raw =
    Array.init wmax (fun k ->
        Wrapper_design.testing_time core ~width:(k + 1))
  in
  let envelope = Array.copy raw in
  let effective = Array.make wmax 1 in
  for w = 1 to wmax - 1 do
    if envelope.(w) < envelope.(w - 1) then effective.(w) <- w + 1
    else begin
      envelope.(w) <- envelope.(w - 1);
      effective.(w) <- effective.(w - 1)
    end
  done;
  let pareto = ref [] in
  for w = wmax downto 1 do
    if w = 1 || envelope.(w - 1) < envelope.(w - 2) then
      pareto := w :: !pareto
  done;
  { core_id = core.Core_def.id; wmax; raw; envelope; effective;
    pareto = !pareto }

let core_id t = t.core_id
let wmax t = t.wmax

let clamp t width =
  if width < 1 then invalid_arg "Pareto: width must be >= 1";
  min width t.wmax

let time t ~width = t.envelope.(clamp t width - 1)
let raw_time t ~width = t.raw.(clamp t width - 1)
let effective_width t ~width = t.effective.(clamp t width - 1)
let pareto_widths t = t.pareto

let highest_pareto t =
  match List.rev t.pareto with
  | w :: _ -> w
  | [] -> 1 (* unreachable: pareto always contains width 1 *)

let min_time t = t.envelope.(t.wmax - 1)

let rectangles t = List.map (fun w -> (w, time t ~width:w)) t.pareto

let preferred_width t ~percent ~delta =
  if percent < 0 then invalid_arg "Pareto.preferred_width: percent < 0";
  if delta < 0 then invalid_arg "Pareto.preferred_width: delta < 0";
  let target =
    min_time t + (min_time t * percent / 100)
  in
  let best =
    List.fold_left
      (fun best w ->
        let gap = abs (time t ~width:w - target) in
        match best with
        | Some (_, best_gap) when best_gap <= gap -> best
        | _ -> Some (w, gap))
      None t.pareto
  in
  let preferred = match best with Some (w, _) -> w | None -> 1 in
  let top = highest_pareto t in
  if top - preferred <= delta then top else preferred

let min_area t =
  List.fold_left
    (fun acc w -> min acc (w * time t ~width:w))
    max_int t.pareto

let pp ppf t =
  Format.fprintf ppf "@[<v>core %d Pareto staircase (wmax=%d):" t.core_id
    t.wmax;
  List.iter
    (fun w -> Format.fprintf ppf "@,w=%2d  T=%d" w (time t ~width:w))
    t.pareto;
  Format.fprintf ppf "@]"
